package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ChromeEvent is one Chrome trace-event object ("ph":"X" complete
// events), the shape chrome://tracing and Perfetto load directly.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // µs since tracer epoch
	Dur  int64          `json:"dur"` // µs
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object trace container format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID picks the event's thread lane: a "worker" attribute (the
// sweep grid and SM pool stamp one) maps to its own row so Perfetto
// shows per-worker occupancy; everything else shares lane 0.
func chromeTID(attrs []Attr) int64 {
	for _, a := range attrs {
		if a.Key != "worker" {
			continue
		}
		switch v := a.Value.(type) {
		case int64:
			return v + 1 // lane 0 is the un-annotated lane
		case int:
			return int64(v) + 1
		}
	}
	return 0
}

// ChromeTraceOf renders the tracer's completed spans as a Chrome trace.
func ChromeTraceOf(t *Tracer) ChromeTrace {
	spans := t.Spans()
	evs := make([]ChromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := ChromeEvent{
			Name: s.Name,
			Cat:  "st2",
			Ph:   "X",
			TS:   s.Start.Microseconds(),
			Dur:  s.Dur.Microseconds(),
			PID:  1,
			TID:  chromeTID(s.Attrs),
		}
		if len(s.Attrs) > 0 || s.Parent != 0 {
			ev.Args = make(map[string]any, len(s.Attrs)+2)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			ev.Args["span_id"] = int64(s.ID)
			if s.Parent != 0 {
				ev.Args["parent_id"] = int64(s.Parent)
			}
		}
		evs = append(evs, ev)
	}
	return ChromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"}
}

// WriteChromeTrace writes the tracer's spans as Chrome trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(ChromeTraceOf(t)); err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	return nil
}

// WriteChromeTraceFile writes the trace to path (the -trace-out flag's
// backing helper).
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
