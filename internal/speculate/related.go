package speculate

// Related-work baselines (Section VII of the paper).

// CASA models "CASA: Correlation-aware speculative adders" (Liu, Tao,
// Tan, Zhang — ISLPED 2014): a *static*, operand-derived prediction with
// no history. For each boundary it predicts the carry out of the
// preceding slice from that slice's operand MSBs — carry is likely iff at
// least one MSB is set (and certain when both are, impossible when
// neither is, which is the same observation ST² refines into Peek).
type CASA struct {
	G Geometry
}

// NewCASA builds the baseline.
func NewCASA(g Geometry) *CASA { return &CASA{G: g} }

// Name implements Predictor.
func (c *CASA) Name() string { return "CASA" }

// Predict implements Predictor.
func (c *CASA) Predict(ctx Context) Prediction {
	nb := c.G.Boundaries()
	var carries uint64
	for i := uint(0); i < nb; i++ {
		msbPos := (i+1)*c.G.SliceBits - 1
		a := (ctx.EA >> msbPos) & 1
		b := (ctx.EB >> msbPos) & 1
		if a|b == 1 && a&b == 0 {
			// Exactly one MSB set: a coin flip in truth; CASA bets on
			// propagation completing (carry = 1).
			carries |= 1 << i
		} else if a&b == 1 {
			carries |= 1 << i // both set: carry guaranteed
		}
		// Neither set: carry impossible; predict 0.
	}
	return Prediction{Carries: carries}
}

// Update implements Predictor (CASA is stateless).
func (c *CASA) Update(Context, uint64, bool) {}

// Reset implements Predictor.
func (c *CASA) Reset() {}

// VLSA models "Variable latency speculative addition" (Verma, Brisk,
// Ienne — DATE 2008): the original variable-latency adder. Its carry
// speculation is the simple static zero (it relies on the rarity of long
// carry chains); what it pioneered — detection and multi-cycle correction
// — is shared by every design in this repository's framework. It is kept
// as a named design so sweeps can reference the lineage explicitly.
type VLSA struct {
	G Geometry
}

// NewVLSA builds the baseline.
func NewVLSA(g Geometry) *VLSA { return &VLSA{G: g} }

// Name implements Predictor.
func (v *VLSA) Name() string { return "VLSA" }

// Predict implements Predictor: all carries speculated zero.
func (v *VLSA) Predict(Context) Prediction { return Prediction{} }

// Update implements Predictor.
func (v *VLSA) Update(Context, uint64, bool) {}

// Reset implements Predictor.
func (v *VLSA) Reset() {}
