package speculate

import (
	"math/bits"

	"st2gpu/internal/bitmath"
)

// Related-work baselines (Section VII of the paper).

// CASA models "CASA: Correlation-aware speculative adders" (Liu, Tao,
// Tan, Zhang — ISLPED 2014): a *static*, operand-derived prediction with
// no history. For each boundary it predicts the carry out of the
// preceding slice from that slice's operand MSBs — carry is likely iff at
// least one MSB is set (and certain when both are, impossible when
// neither is, which is the same observation ST² refines into Peek).
type CASA struct {
	G Geometry
}

// NewCASA builds the baseline.
func NewCASA(g Geometry) *CASA { return &CASA{G: g} }

// Name implements Predictor.
func (c *CASA) Name() string { return "CASA" }

// Predict implements Predictor. Boundary i carries iff at least one of
// the preceding slice's operand MSBs is set (certain when both are,
// impossible when neither is, and CASA bets on propagation completing
// when exactly one is) — which is the MSB gather of EA|EB.
func (c *CASA) Predict(ctx Context) Prediction {
	if c.G.SliceBits == 8 {
		return Prediction{Carries: bitmath.GatherMSB8(ctx.EA|ctx.EB) & c.G.BoundaryMask()}
	}
	nb := c.G.Boundaries()
	var carries uint64
	or := ctx.EA | ctx.EB
	for i := uint(0); i < nb; i++ {
		msbPos := (i+1)*c.G.SliceBits - 1
		carries |= (or >> msbPos & 1) << i
	}
	return Prediction{Carries: carries}
}

// Update implements Predictor (CASA is stateless).
func (c *CASA) Update(Context, uint64, bool) {}

// Reset implements Predictor.
func (c *CASA) Reset() {}

// PredictWarp implements WarpPredictor: one gather per lane.
func (c *CASA) PredictWarp(_, _, active, _ uint32, ea, eb, carries, static []uint64) {
	if c.G.SliceBits == 8 {
		mask := c.G.BoundaryMask()
		n := bits.OnesCount32(active)
		for j := 0; j < n; j++ {
			carries[j] = bitmath.GatherMSB8(ea[j]|eb[j]) & mask
			static[j] = 0
		}
		return
	}
	n := bits.OnesCount32(active)
	for j := 0; j < n; j++ {
		pr := c.Predict(Context{EA: ea[j], EB: eb[j]})
		carries[j], static[j] = pr.Carries, 0
	}
}

// UpdateWarp implements WarpPredictor (CASA is stateless).
func (c *CASA) UpdateWarp(_, _, _, _, _ uint32, _, _, _ []uint64) {}

// VLSA models "Variable latency speculative addition" (Verma, Brisk,
// Ienne — DATE 2008): the original variable-latency adder. Its carry
// speculation is the simple static zero (it relies on the rarity of long
// carry chains); what it pioneered — detection and multi-cycle correction
// — is shared by every design in this repository's framework. It is kept
// as a named design so sweeps can reference the lineage explicitly.
type VLSA struct {
	G Geometry
}

// NewVLSA builds the baseline.
func NewVLSA(g Geometry) *VLSA { return &VLSA{G: g} }

// Name implements Predictor.
func (v *VLSA) Name() string { return "VLSA" }

// Predict implements Predictor: all carries speculated zero.
func (v *VLSA) Predict(Context) Prediction { return Prediction{} }

// Update implements Predictor.
func (v *VLSA) Update(Context, uint64, bool) {}

// Reset implements Predictor.
func (v *VLSA) Reset() {}

// PredictWarp implements WarpPredictor: all carries speculated zero.
func (v *VLSA) PredictWarp(_, _, active, _ uint32, _, _, carries, static []uint64) {
	n := bits.OnesCount32(active)
	for j := 0; j < n; j++ {
		carries[j], static[j] = 0, 0
	}
}

// UpdateWarp implements WarpPredictor (VLSA is stateless).
func (v *VLSA) UpdateWarp(_, _, _, _, _ uint32, _, _, _ []uint64) {}
