package speculate

import (
	"math/bits"
	"math/rand"
	"testing"

	"st2gpu/internal/bitmath"
)

// batchTestDesigns covers every design point reachable from the
// experiment harnesses: the Figure 5 space, the Figure 3 analysis
// points, the ablation/related-work extras, and the oracle.
var batchTestDesigns = append(append([]string{}, DesignSpace...),
	"Ltid+Prev+XorPC4+Peek", "Ltid+Prev2+ModPC4+Peek",
	"Gtid+Prev", "Gtid+Prev+FullPC", "Ltid+Prev+FullPC",
	"CASA", "VLSA", "oracle",
)

type warpCase struct {
	pc, base    uint32
	active, cin uint32
	ea, eb      [32]uint64 // dense per-lane, only active lanes consulted
}

func randomWarps(rng *rand.Rand, n int) []warpCase {
	out := make([]warpCase, n)
	for i := range out {
		w := &out[i]
		w.pc = uint32(rng.Intn(64))
		w.base = uint32(rng.Intn(8)) * 32
		w.active = rng.Uint32()
		if w.active == 0 {
			w.active = 1 << uint(rng.Intn(32))
		}
		w.cin = rng.Uint32() & w.active
		for l := 0; l < 32; l++ {
			w.ea[l] = rng.Uint64() >> uint(rng.Intn(64))
			w.eb[l] = rng.Uint64() >> uint(rng.Intn(64))
		}
	}
	return out
}

// TestWarpDispatchMatchesScalar drives two instances of every design —
// one through per-lane Predict/Update, one through the batched
// PredictWarp/UpdateWarp dispatch — over the same random warp stream and
// requires identical predictions at every step. The update stream mirrors
// the DSE meter: predictions from pre-update state, kind-masked actuals,
// mispredicting lanes written back.
func TestWarpDispatchMatchesScalar(t *testing.T) {
	g := Geometry{Width: 64, SliceBits: 8}
	mask := bitmath.Mask(3) // judge on a narrow kind mask to exercise masking
	for _, name := range batchTestDesigns {
		t.Run(name, func(t *testing.T) {
			scalar, err := NewDesign(name, g)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := NewDesign(name, g)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			var ea, eb, carries, static, actual [32]uint64
			for step, w := range randomWarps(rng, 200) {
				n := 0
				for m := w.active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					ea[n], eb[n] = w.ea[l], w.eb[l]
					n++
				}
				PredictWarp(batched, w.pc, w.base, w.active, w.cin, ea[:n], eb[:n], carries[:n], static[:n])

				var mispred uint32
				j := 0
				for m := w.active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					ctx := Context{PC: w.pc, Gtid: w.base + uint32(l), Ltid: uint8(l),
						EA: w.ea[l], EB: w.eb[l], Cin0: uint(w.cin >> l & 1)}
					want := scalar.Predict(ctx)
					if want.Carries != carries[j] || want.Static != static[j] {
						t.Fatalf("step %d lane %d: batched Prediction{%#x,%#x} != scalar Prediction{%#x,%#x}",
							step, l, carries[j], static[j], want.Carries, want.Static)
					}
					actual[j] = bitmath.BoundaryCarriesPacked(ctx.EA, ctx.EB, ctx.Cin0, 64, 8) & mask
					if (want.Carries^actual[j])&mask&^want.Static != 0 {
						mispred |= 1 << l
					}
					j++
				}

				j = 0
				for m := w.active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					ctx := Context{PC: w.pc, Gtid: w.base + uint32(l), Ltid: uint8(l),
						EA: w.ea[l], EB: w.eb[l], Cin0: uint(w.cin >> l & 1)}
					scalar.Update(ctx, actual[j], mispred&(1<<l) != 0)
					j++
				}
				UpdateWarp(batched, w.pc, w.base, w.active, mispred, w.cin, ea[:n], eb[:n], actual[:n])
			}
		})
	}
}

// TestWarpDispatchAlwaysUpdate pins the CorrMeter-style flow (history
// written for every active lane) onto the batched path for the
// AlwaysUpdate designs, where a missed write would silently diverge.
func TestWarpDispatchAlwaysUpdate(t *testing.T) {
	g := Geometry{Width: 64, SliceBits: 8}
	for _, name := range []string{"Gtid+Prev", "Gtid+Prev+FullPC", "Ltid+Prev+FullPC"} {
		t.Run(name, func(t *testing.T) {
			scalar, _ := NewDesign(name, g)
			batched, _ := NewDesign(name, g)
			rng := rand.New(rand.NewSource(7))
			var ea, eb, carries, static, actual [32]uint64
			for step, w := range randomWarps(rng, 120) {
				n := 0
				for m := w.active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					ea[n], eb[n] = w.ea[l], w.eb[l]
					n++
				}
				PredictWarp(batched, w.pc, w.base, w.active, w.cin, ea[:n], eb[:n], carries[:n], static[:n])
				j := 0
				for m := w.active; m != 0; m &= m - 1 {
					l := bits.TrailingZeros32(m)
					ctx := Context{PC: w.pc, Gtid: w.base + uint32(l), Ltid: uint8(l),
						EA: w.ea[l], EB: w.eb[l], Cin0: uint(w.cin >> l & 1)}
					want := scalar.Predict(ctx)
					if want.Carries != carries[j] || want.Static != static[j] {
						t.Fatalf("step %d lane %d: batched prediction diverged", step, l)
					}
					actual[j] = bitmath.BoundaryCarriesPacked(ctx.EA, ctx.EB, ctx.Cin0, 64, 8)
					scalar.Update(ctx, actual[j], true)
					j++
				}
				// CorrMeter semantics: every active lane updates.
				UpdateWarp(batched, w.pc, w.base, w.active, w.active, w.cin, ea[:n], eb[:n], actual[:n])
			}
		})
	}
}
