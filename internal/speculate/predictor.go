// Package speculate implements the carry-speculation mechanisms of the ST²
// design-space exploration (Section IV-B of the paper): static predictors,
// the VaLHALLA baseline, the Prev history mechanism with ModPCk / Gtid /
// Ltid indexing, the Peek static-resolution filter, and the hardware Carry
// Register File (CRF) with write-back contention and random arbitration.
//
// A Predictor produces, for one dynamic add/sub, the packed per-boundary
// carry predictions that internal/adder consumes, and learns from the
// operation's actual carry-outs afterwards.
package speculate

import (
	"fmt"

	"st2gpu/internal/adder"
	"st2gpu/internal/bitmath"
)

// Context identifies one dynamic operation to the predictor: where it is
// in the program (PC), who executes it (thread ids) and what flows through
// the datapath (the *effective* operands after the subtraction transform —
// exactly what the hardware slice input registers hold).
type Context struct {
	PC   uint32 // static instruction index
	Gtid uint32 // global thread id
	Ltid uint8  // lane within the warp, 0..31
	EA   uint64 // effective operand 1
	EB   uint64 // effective operand 2 (ones'-complemented for subtraction)
	Cin0 uint   // injected carry into slice 0 (1 for subtraction)
}

// Prediction carries the packed boundary predictions plus the mask of
// boundaries that were resolved statically (by Peek) and are therefore
// guaranteed correct — the hardware performs no dynamic speculation there.
type Prediction struct {
	Carries uint64 // bit i = predicted carry into slice i+1
	Static  uint64 // bit i set: boundary i was statically resolved (Peek)
}

// Predictor is one point in the carry-speculation design space.
type Predictor interface {
	// Name returns the design-space label (e.g. "Ltid+Prev+ModPC4+Peek").
	Name() string
	// Predict produces the boundary carries to speculate for this operation.
	Predict(ctx Context) Prediction
	// Update learns from the operation's true boundary carries. Following
	// the paper, implementations only write history when the thread
	// mispredicted (that is when the hardware performs a CRF write-back).
	Update(ctx Context, actual uint64, mispredicted bool)
	// Reset clears all history (new kernel launch).
	Reset()
}

// Geometry fixes the adder shape a predictor speculates for.
type Geometry struct {
	Width     uint
	SliceBits uint
}

// GeometryOf extracts the Geometry from an adder configuration.
func GeometryOf(cfg adder.Config) Geometry {
	return Geometry{Width: cfg.Width, SliceBits: cfg.SliceBits}
}

// Boundaries returns the number of speculated carry boundaries.
func (g Geometry) Boundaries() uint {
	return bitmath.NumSlices(g.Width, g.SliceBits) - 1
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	cfg := adder.Config{Width: g.Width, SliceBits: g.SliceBits}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if g.Boundaries() == 0 {
		return fmt.Errorf("speculate: geometry %+v has no boundaries to speculate", g)
	}
	return nil
}

// BoundaryMask returns the mask covering all boundary bits.
func (g Geometry) BoundaryMask() uint64 { return bitmath.Mask(g.Boundaries()) }

// staticPredictor predicts the same constant for every boundary.
type staticPredictor struct {
	g     Geometry
	value uint64
	name  string
}

// NewStaticZero returns the "staticZero" design: always predict carry 0.
func NewStaticZero(g Geometry) Predictor {
	return &staticPredictor{g: g, value: 0, name: "staticZero"}
}

// NewStaticOne returns the "staticOne" design: always predict carry 1.
func NewStaticOne(g Geometry) Predictor {
	return &staticPredictor{g: g, value: ^uint64(0), name: "staticOne"}
}

func (s *staticPredictor) Name() string { return s.name }

func (s *staticPredictor) Predict(Context) Prediction {
	return Prediction{Carries: s.value & s.g.BoundaryMask()}
}

func (s *staticPredictor) Update(Context, uint64, bool) {}
func (s *staticPredictor) Reset()                       {}

// PeekBits computes the statically-resolvable boundaries for the given
// effective operands: boundary i (the carry out of slice i) is 0 when both
// MSBs of slice i's operands are 0, and 1 when both are 1. Returns the
// resolved mask and the resolved values. The per-boundary gather is
// branchless (a boundary resolves exactly when the two MSBs agree, and
// resolves to their AND), keeping the hot sweep path free of
// data-dependent branches.
func PeekBits(g Geometry, ea, eb uint64) (static, values uint64) {
	agree := ^(ea ^ eb) // bit set where the operands' bits match
	both := ea & eb     // bit set where they match at 1
	if g.SliceBits == 8 {
		// Boundary i's MSB sits at bit 8i+7 — exactly the byte MSBs,
		// which one multiply-gather collects for all boundaries at once.
		m := g.BoundaryMask()
		return bitmath.GatherMSB8(agree) & m, bitmath.GatherMSB8(both) & m
	}
	nb := g.Boundaries()
	for i := uint(0); i < nb; i++ {
		msbPos := (i+1)*g.SliceBits - 1
		static |= (agree >> msbPos & 1) << i
		values |= (both >> msbPos & 1) << i
	}
	return static, values
}

// peekPredictor wraps an inner predictor with the Peek filter: boundaries
// whose previous-slice operand MSBs agree are resolved statically
// (guaranteed correct); only the rest consult the inner predictor.
type peekPredictor struct {
	g     Geometry
	inner Predictor
}

// WithPeek adds the Peek mechanism in front of inner.
func WithPeek(g Geometry, inner Predictor) Predictor {
	return &peekPredictor{g: g, inner: inner}
}

func (p *peekPredictor) Name() string { return p.inner.Name() + "+Peek" }

func (p *peekPredictor) Predict(ctx Context) Prediction {
	static, values := PeekBits(p.g, ctx.EA, ctx.EB)
	dyn := p.inner.Predict(ctx)
	return Prediction{
		Carries: (dyn.Carries &^ static) | values,
		Static:  static | dyn.Static,
	}
}

func (p *peekPredictor) Update(ctx Context, actual uint64, mispredicted bool) {
	p.inner.Update(ctx, actual, mispredicted)
}

func (p *peekPredictor) Reset() { p.inner.Reset() }

// Oracle returns perfect predictions; used to bound achievable accuracy in
// tests and ablations.
type Oracle struct{ G Geometry }

// Name implements Predictor.
func (o *Oracle) Name() string { return "oracle" }

// Predict returns the exact boundary carries.
func (o *Oracle) Predict(ctx Context) Prediction {
	return Prediction{
		Carries: bitmath.BoundaryCarriesPacked(ctx.EA, ctx.EB, ctx.Cin0, o.G.Width, o.G.SliceBits),
		Static:  o.G.BoundaryMask(),
	}
}

// Update implements Predictor.
func (o *Oracle) Update(Context, uint64, bool) {}

// Reset implements Predictor.
func (o *Oracle) Reset() {}
