package speculate

import (
	"fmt"
	"math/bits"
	"strings"

	"st2gpu/internal/bitmath"
)

// ThreadMode selects how a history table disambiguates threads.
type ThreadMode int

const (
	// SharedThreads: one history entry per PC index, shared by every
	// thread ("Prev", "Prev+ModPCk" designs).
	SharedThreads ThreadMode = iota
	// ByLtid: one sub-entry per warp lane (0..31), shared across warps —
	// the paper's final, implementable choice.
	ByLtid
	// ByGtid: fully disambiguated per global thread — the design the paper
	// shows performs *worse* (no constructive sharing) and needs an
	// impractically large table.
	ByGtid
)

func (m ThreadMode) String() string {
	switch m {
	case SharedThreads:
		return "shared"
	case ByLtid:
		return "Ltid"
	case ByGtid:
		return "Gtid"
	default:
		return fmt.Sprintf("ThreadMode(%d)", int(m))
	}
}

// PCMode selects how a history table folds the PC into its index.
type PCMode int

const (
	// NoPC ignores the PC entirely ("Prev": all instructions alias).
	NoPC PCMode = iota
	// ModPC uses the low PCBits bits of the PC ("ModPCk").
	ModPC
	// FullPC uses the entire PC (Fig 3's idealized correlation analysis).
	FullPC
	// XorPC folds the PC by XOR-ing 4-bit chunks down to PCBits bits — the
	// "more complex indexing" the paper reports provides no benefit.
	XorPC
)

func (m PCMode) String() string {
	switch m {
	case NoPC:
		return "noPC"
	case ModPC:
		return "modPC"
	case FullPC:
		return "fullPC"
	case XorPC:
		return "xorPC"
	default:
		return fmt.Sprintf("PCMode(%d)", int(m))
	}
}

// HistoryConfig describes one Prev-family design point.
type HistoryConfig struct {
	Geometry Geometry
	PCMode   PCMode
	PCBits   uint // index bits for ModPC / XorPC
	Threads  ThreadMode
	// AlwaysUpdate writes history after every operation instead of only
	// after mispredictions (an ablation; the hardware updates only
	// mispredicting threads to save CRF write energy).
	AlwaysUpdate bool
}

// Validate reports whether the configuration is coherent.
func (c HistoryConfig) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch c.PCMode {
	case ModPC, XorPC:
		if c.PCBits == 0 || c.PCBits > 16 {
			return fmt.Errorf("speculate: PC index bits %d outside [1,16]", c.PCBits)
		}
	case NoPC, FullPC:
		if c.PCBits != 0 {
			return fmt.Errorf("speculate: PCBits must be 0 for %v", c.PCMode)
		}
	default:
		return fmt.Errorf("speculate: unknown PC mode %v", c.PCMode)
	}
	switch c.Threads {
	case SharedThreads, ByLtid, ByGtid:
	default:
		return fmt.Errorf("speculate: unknown thread mode %v", c.Threads)
	}
	return nil
}

// Name renders the paper's design-space label for this configuration.
func (c HistoryConfig) Name() string {
	var b strings.Builder
	switch c.Threads {
	case ByLtid:
		b.WriteString("Ltid+")
	case ByGtid:
		b.WriteString("Gtid+")
	}
	b.WriteString("Prev")
	switch c.PCMode {
	case ModPC:
		fmt.Fprintf(&b, "+ModPC%d", c.PCBits)
	case FullPC:
		b.WriteString("+FullPC")
	case XorPC:
		fmt.Fprintf(&b, "+XorPC%d", c.PCBits)
	}
	return b.String()
}

// History is the Prev-family predictor: a table of the boundary carry-outs
// produced by previous operations, indexed by (folded PC, thread key).
//
// When the key space is bounded (every PC mode except FullPC, every
// thread mode except ByGtid) the table is a dense flat array indexed by
// the key directly — the batched evaluation kernel then pays one array
// load per lookup instead of a map probe, with identical semantics: a
// never-written slot reads as zero, exactly like a missing map entry.
// ByGtid tables with a bounded PC space use a gtid-major flat table
// grown on demand (gtids are dense small integers in practice), with
// the map kept as overflow for pathological ids. Truly unbounded key
// spaces (FullPC) keep the map alone.
type History struct {
	cfg      HistoryConfig
	dense    []uint64 // flat table; nil when the key space is unbounded
	written  []uint64 // dense-slot occupancy bitmap (backs Entries)
	entries  int      // live dense/grow entries
	growMode bool     // ByGtid with bounded PC: gtid-major grow-on-demand table
	pcBits   uint     // grow-table PC index width (0 for NoPC)
	table    map[uint64]uint64 // packed previous boundary carries (sparse fallback)
}

// maxDenseEntries bounds the eager flat-table allocation; bounded key
// spaces larger than this (e.g. ModPC16+Ltid's 2M slots) fall back to
// the map rather than pinning megabytes per predictor.
const maxDenseEntries = 1 << 16

// maxGrowGtid bounds the grow-on-demand ByGtid table: real launches
// number their global threads densely from zero, so the table covers
// them all; an adversarially huge gtid spills to the map instead of
// sizing a multi-GiB allocation.
const maxGrowGtid = 1 << 22

// denseSize returns the flat-table slot count for a bounded key space,
// or 0 when the keys are unbounded (FullPC PCs, ByGtid thread ids) or
// the bounded space is too large to allocate eagerly.
func (c HistoryConfig) denseSize() uint64 {
	if c.PCMode == FullPC || c.Threads == ByGtid {
		return 0
	}
	size := uint64(1) // NoPC: a single PC bucket
	if c.PCMode == ModPC || c.PCMode == XorPC {
		size = 1 << c.PCBits
	}
	if c.Threads == ByLtid {
		size <<= 5
	}
	if size > maxDenseEntries {
		return 0
	}
	return size
}

// NewHistory builds a Prev-family predictor.
func NewHistory(cfg HistoryConfig) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &History{cfg: cfg}
	h.Reset()
	return h, nil
}

// Config returns the design point.
func (h *History) Config() HistoryConfig { return h.cfg }

// Name implements Predictor.
func (h *History) Name() string { return h.cfg.Name() }

// Entries returns the number of live table entries (used by the DSE
// commentary on table sizes).
func (h *History) Entries() int {
	if h.growMode {
		return h.entries + len(h.table)
	}
	if h.dense != nil {
		return h.entries
	}
	return len(h.table)
}

// growLimit is the first key past the grow-on-demand table's reach;
// keys at or beyond it live in the overflow map.
func (h *History) growLimit() uint64 { return maxGrowGtid << h.pcBits }

// load reads the table slot for a key; unwritten slots read as zero in
// every representation.
func (h *History) load(key uint64) uint64 {
	if h.growMode {
		if key < uint64(len(h.dense)) {
			return h.dense[key]
		}
		if key >= h.growLimit() {
			return h.table[key]
		}
		return 0 // within reach but never grown to: cold
	}
	if h.dense != nil {
		return h.dense[key]
	}
	return h.table[key]
}

// store writes a table slot, tracking dense occupancy for Entries.
func (h *History) store(key, v uint64) {
	if h.growMode {
		if key >= h.growLimit() {
			h.table[key] = v
			return
		}
		if key >= uint64(len(h.dense)) {
			size := uint64(1) << bits.Len64(key)
			if lim := h.growLimit(); size > lim {
				size = lim
			}
			grown := make([]uint64, size)
			copy(grown, h.dense)
			h.dense = grown
			wr := make([]uint64, (size+63)/64)
			copy(wr, h.written)
			h.written = wr
		}
	}
	if h.dense != nil {
		if h.written[key>>6]&(1<<(key&63)) == 0 {
			h.written[key>>6] |= 1 << (key & 63)
			h.entries++
		}
		h.dense[key] = v
		return
	}
	h.table[key] = v
}

// gtidKey is the ByGtid key for a folded PC and global thread id. The
// grow-on-demand table is gtid-major (gtids are dense small integers,
// so the table stays proportional to the live thread count); the map
// layouts keep the historical pcPart-major packing. Both are injective,
// so the choice is invisible to behavior.
func (h *History) gtidKey(pcPart uint64, gtid uint32) uint64 {
	if h.growMode {
		return uint64(gtid)<<h.pcBits | pcPart
	}
	return pcPart<<32 | uint64(gtid)
}

func (h *History) key(ctx Context) uint64 {
	var pcPart uint64
	switch h.cfg.PCMode {
	case ModPC:
		pcPart = uint64(ctx.PC) & bitmath.Mask(h.cfg.PCBits)
	case FullPC:
		pcPart = uint64(ctx.PC)
	case XorPC:
		folded := uint64(0)
		pc := uint64(ctx.PC)
		for pc != 0 {
			folded ^= pc & bitmath.Mask(h.cfg.PCBits)
			pc >>= h.cfg.PCBits
		}
		pcPart = folded
	}
	switch h.cfg.Threads {
	case ByLtid:
		return pcPart<<5 | uint64(ctx.Ltid&31)
	case ByGtid:
		return h.gtidKey(pcPart, ctx.Gtid)
	default:
		return pcPart
	}
}

// Predict implements Predictor: the previous carries stored for this
// (PC, thread) bucket, defaulting to all-zero when cold.
func (h *History) Predict(ctx Context) Prediction {
	return Prediction{Carries: h.load(h.key(ctx)) & h.cfg.Geometry.BoundaryMask()}
}

// Update implements Predictor. Matching the hardware, history is written
// only when the thread mispredicted (unless AlwaysUpdate is set).
func (h *History) Update(ctx Context, actual uint64, mispredicted bool) {
	if !mispredicted && !h.cfg.AlwaysUpdate {
		return
	}
	h.store(h.key(ctx), actual&h.cfg.Geometry.BoundaryMask())
}

// Reset implements Predictor.
func (h *History) Reset() {
	h.growMode, h.pcBits = false, 0
	if size := h.cfg.denseSize(); size > 0 {
		h.dense = make([]uint64, size)
		h.written = make([]uint64, (size+63)/64)
		h.entries = 0
		h.table = nil
		return
	}
	h.dense, h.written, h.entries = nil, nil, 0
	h.table = make(map[uint64]uint64)
	if h.cfg.Threads == ByGtid && h.cfg.PCMode != FullPC {
		// Bounded PC space per thread: grow a gtid-major flat table on
		// demand, keeping the map as overflow for pathological gtids.
		h.growMode = true
		if h.cfg.PCMode == ModPC || h.cfg.PCMode == XorPC {
			h.pcBits = h.cfg.PCBits
		}
	}
}
