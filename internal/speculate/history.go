package speculate

import (
	"fmt"
	"strings"

	"st2gpu/internal/bitmath"
)

// ThreadMode selects how a history table disambiguates threads.
type ThreadMode int

const (
	// SharedThreads: one history entry per PC index, shared by every
	// thread ("Prev", "Prev+ModPCk" designs).
	SharedThreads ThreadMode = iota
	// ByLtid: one sub-entry per warp lane (0..31), shared across warps —
	// the paper's final, implementable choice.
	ByLtid
	// ByGtid: fully disambiguated per global thread — the design the paper
	// shows performs *worse* (no constructive sharing) and needs an
	// impractically large table.
	ByGtid
)

func (m ThreadMode) String() string {
	switch m {
	case SharedThreads:
		return "shared"
	case ByLtid:
		return "Ltid"
	case ByGtid:
		return "Gtid"
	default:
		return fmt.Sprintf("ThreadMode(%d)", int(m))
	}
}

// PCMode selects how a history table folds the PC into its index.
type PCMode int

const (
	// NoPC ignores the PC entirely ("Prev": all instructions alias).
	NoPC PCMode = iota
	// ModPC uses the low PCBits bits of the PC ("ModPCk").
	ModPC
	// FullPC uses the entire PC (Fig 3's idealized correlation analysis).
	FullPC
	// XorPC folds the PC by XOR-ing 4-bit chunks down to PCBits bits — the
	// "more complex indexing" the paper reports provides no benefit.
	XorPC
)

func (m PCMode) String() string {
	switch m {
	case NoPC:
		return "noPC"
	case ModPC:
		return "modPC"
	case FullPC:
		return "fullPC"
	case XorPC:
		return "xorPC"
	default:
		return fmt.Sprintf("PCMode(%d)", int(m))
	}
}

// HistoryConfig describes one Prev-family design point.
type HistoryConfig struct {
	Geometry Geometry
	PCMode   PCMode
	PCBits   uint // index bits for ModPC / XorPC
	Threads  ThreadMode
	// AlwaysUpdate writes history after every operation instead of only
	// after mispredictions (an ablation; the hardware updates only
	// mispredicting threads to save CRF write energy).
	AlwaysUpdate bool
}

// Validate reports whether the configuration is coherent.
func (c HistoryConfig) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch c.PCMode {
	case ModPC, XorPC:
		if c.PCBits == 0 || c.PCBits > 16 {
			return fmt.Errorf("speculate: PC index bits %d outside [1,16]", c.PCBits)
		}
	case NoPC, FullPC:
		if c.PCBits != 0 {
			return fmt.Errorf("speculate: PCBits must be 0 for %v", c.PCMode)
		}
	default:
		return fmt.Errorf("speculate: unknown PC mode %v", c.PCMode)
	}
	switch c.Threads {
	case SharedThreads, ByLtid, ByGtid:
	default:
		return fmt.Errorf("speculate: unknown thread mode %v", c.Threads)
	}
	return nil
}

// Name renders the paper's design-space label for this configuration.
func (c HistoryConfig) Name() string {
	var b strings.Builder
	switch c.Threads {
	case ByLtid:
		b.WriteString("Ltid+")
	case ByGtid:
		b.WriteString("Gtid+")
	}
	b.WriteString("Prev")
	switch c.PCMode {
	case ModPC:
		fmt.Fprintf(&b, "+ModPC%d", c.PCBits)
	case FullPC:
		b.WriteString("+FullPC")
	case XorPC:
		fmt.Fprintf(&b, "+XorPC%d", c.PCBits)
	}
	return b.String()
}

// History is the Prev-family predictor: a table of the boundary carry-outs
// produced by previous operations, indexed by (folded PC, thread key).
type History struct {
	cfg   HistoryConfig
	table map[uint64]uint64 // packed previous boundary carries
}

// NewHistory builds a Prev-family predictor.
func NewHistory(cfg HistoryConfig) (*History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &History{cfg: cfg, table: make(map[uint64]uint64)}, nil
}

// Config returns the design point.
func (h *History) Config() HistoryConfig { return h.cfg }

// Name implements Predictor.
func (h *History) Name() string { return h.cfg.Name() }

// Entries returns the number of live table entries (used by the DSE
// commentary on table sizes).
func (h *History) Entries() int { return len(h.table) }

func (h *History) key(ctx Context) uint64 {
	var pcPart uint64
	switch h.cfg.PCMode {
	case ModPC:
		pcPart = uint64(ctx.PC) & bitmath.Mask(h.cfg.PCBits)
	case FullPC:
		pcPart = uint64(ctx.PC)
	case XorPC:
		folded := uint64(0)
		pc := uint64(ctx.PC)
		for pc != 0 {
			folded ^= pc & bitmath.Mask(h.cfg.PCBits)
			pc >>= h.cfg.PCBits
		}
		pcPart = folded
	}
	switch h.cfg.Threads {
	case ByLtid:
		return pcPart<<5 | uint64(ctx.Ltid&31)
	case ByGtid:
		return pcPart<<32 | uint64(ctx.Gtid)
	default:
		return pcPart
	}
}

// Predict implements Predictor: the previous carries stored for this
// (PC, thread) bucket, defaulting to all-zero when cold.
func (h *History) Predict(ctx Context) Prediction {
	return Prediction{Carries: h.table[h.key(ctx)] & h.cfg.Geometry.BoundaryMask()}
}

// Update implements Predictor. Matching the hardware, history is written
// only when the thread mispredicted (unless AlwaysUpdate is set).
func (h *History) Update(ctx Context, actual uint64, mispredicted bool) {
	if !mispredicted && !h.cfg.AlwaysUpdate {
		return
	}
	h.table[h.key(ctx)] = actual & h.cfg.Geometry.BoundaryMask()
}

// Reset implements Predictor.
func (h *History) Reset() { h.table = make(map[uint64]uint64) }
