package speculate

import (
	"math/bits"

	"st2gpu/internal/bitmath"
)

// This file extends the WarpPredictor fast path from predictor lookup to
// full evaluation: the judge (which lanes mispredicted, how many boundary
// bits matched) and the Peek overlay run as uint64 mask arithmetic over
// all active lanes of a record, with no data-dependent branches in the
// lane loops. The design-batched trace kernels call these once per record
// per design, so every instruction here is on the sweep hot path.

// PeekBitsWarp computes PeekBits for every active lane at once: ea/eb
// hold the popcount(active) lanes' operands in ascending-lane order, and
// static/values receive each lane's statically-resolved boundary mask and
// values. Hoisting this out of the per-design loop is what lets a
// design batch share one Peek computation per record.
func PeekBitsWarp(g Geometry, ea, eb, static, values []uint64) {
	if g.SliceBits == 8 {
		m := g.BoundaryMask()
		for j := range ea {
			static[j] = bitmath.GatherMSB8(^(ea[j] ^ eb[j])) & m
			values[j] = bitmath.GatherMSB8(ea[j]&eb[j]) & m
		}
		return
	}
	for j := range ea {
		static[j], values[j] = PeekBits(g, ea[j], eb[j])
	}
}

// OverlayPeek applies the Peek filter to each lane's dynamic prediction,
// exactly as peekPredictor.Predict composes it: peek-resolved boundaries
// take their known values and join the static set.
func OverlayPeek(carries, static, pkStatic, pkValues []uint64) {
	for j := range carries {
		carries[j] = (carries[j] &^ pkStatic[j]) | pkValues[j]
		static[j] |= pkStatic[j]
	}
}

// SplitPeek strips a Peek wrapper: it returns the inner predictor and
// true when p is Peek-filtered, or p itself and false otherwise. Batched
// evaluators use it to hoist the per-record Peek computation out of the
// per-design predictor calls (PeekBitsWarp once, OverlayPeek per design).
func SplitPeek(p Predictor) (Predictor, bool) {
	if pk, ok := p.(*peekPredictor); ok {
		return pk.inner, true
	}
	return p, false
}

// JudgeMissWarp scores one warp record against one design's predictions
// with the miss-rate semantics (Figure 5): a lane mispredicts when any
// non-static boundary under mask was speculated wrong. carries/static
// hold the predictions, actual the true (already masked) boundary
// carries, all in ascending-lane order. Returns the mispredicting-lane
// mask and the misprediction count; the body is branchless.
func JudgeMissWarp(active uint32, mask uint64, carries, static, actual []uint64) (mispred uint32, missed uint64) {
	if active == ^uint32(0) {
		// Full warp: lane l is index l, no mask iteration needed.
		for j := range actual {
			wrong := bitmath.NonZeroBit((carries[j] ^ actual[j]) & mask &^ static[j])
			mispred |= uint32(wrong) << j
			missed += wrong
		}
		return mispred, missed
	}
	j := 0
	for m := active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		wrong := bitmath.NonZeroBit((carries[j] ^ actual[j]) & mask &^ static[j])
		mispred |= uint32(wrong) << l
		missed += wrong
		j++
	}
	return mispred, missed
}

// JudgeCorrWarp scores one warp record against one design's predictions
// with the per-boundary correlation semantics (Figure 3): the number of
// boundary bits, over nb boundaries per lane, that matched the true
// carries.
func JudgeCorrWarp(nb uint, mask uint64, carries, actual []uint64) (matched uint64) {
	for j := range actual {
		matched += uint64(nb) - uint64(bits.OnesCount64((carries[j]^actual[j])&mask))
	}
	return matched
}
