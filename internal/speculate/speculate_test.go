package speculate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"st2gpu/internal/adder"
	"st2gpu/internal/bitmath"
)

var g64 = Geometry{Width: 64, SliceBits: 8}

func TestGeometry(t *testing.T) {
	if g64.Boundaries() != 7 {
		t.Errorf("64/8 boundaries = %d", g64.Boundaries())
	}
	if (Geometry{Width: 24, SliceBits: 8}).Boundaries() != 2 {
		t.Error("24/8 boundaries wrong")
	}
	if err := g64.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if err := (Geometry{Width: 8, SliceBits: 8}).Validate(); err == nil {
		t.Error("single-slice geometry has nothing to speculate; want error")
	}
	if err := (Geometry{Width: 0, SliceBits: 8}).Validate(); err == nil {
		t.Error("zero width should error")
	}
	if GeometryOf(adder.Config{Width: 52, SliceBits: 8}).Boundaries() != 6 {
		t.Error("GeometryOf wrong")
	}
}

func TestStaticPredictors(t *testing.T) {
	z := NewStaticZero(g64)
	o := NewStaticOne(g64)
	if z.Name() != "staticZero" || o.Name() != "staticOne" {
		t.Error("names wrong")
	}
	ctx := Context{EA: 123, EB: 456}
	if p := z.Predict(ctx); p.Carries != 0 || p.Static != 0 {
		t.Errorf("staticZero predicted %v", p)
	}
	if p := o.Predict(ctx); p.Carries != 0x7F {
		t.Errorf("staticOne predicted %#x, want 0x7F", p.Carries)
	}
	z.Update(ctx, 0x7F, true) // no-op
	z.Reset()
	if p := z.Predict(ctx); p.Carries != 0 {
		t.Error("static predictor must be stateless")
	}
}

// Peek's static resolutions must never be wrong: whenever PeekBits claims
// a boundary, the claimed value equals the true boundary carry.
func TestPeekGuaranteedCorrect(t *testing.T) {
	f := func(a, b uint64, cinRaw bool) bool {
		cin := uint(0)
		if cinRaw {
			cin = 1
		}
		static, values := PeekBits(g64, a, b)
		truth := bitmath.BoundaryCarriesPacked(a, b, cin, 64, 8)
		return (truth^values)&static == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestPeekKnownCases(t *testing.T) {
	// All slice MSBs zero → every boundary statically 0.
	static, values := PeekBits(g64, 0, 0)
	if static != 0x7F || values != 0 {
		t.Errorf("zeros: static=%07b values=%07b", static, values)
	}
	// All slice MSBs one → every boundary statically 1.
	allMSB := uint64(0x8080808080808080)
	static, values = PeekBits(g64, allMSB, allMSB)
	if static != 0x7F || values != 0x7F {
		t.Errorf("ones: static=%07b values=%07b", static, values)
	}
	// Disagreeing MSBs → nothing resolvable.
	static, _ = PeekBits(g64, allMSB, 0)
	if static != 0 {
		t.Errorf("mixed: static=%07b, want 0", static)
	}
}

func TestWithPeekDelegation(t *testing.T) {
	inner := NewStaticOne(g64)
	p := WithPeek(g64, inner)
	if p.Name() != "staticOne+Peek" {
		t.Errorf("name = %q", p.Name())
	}
	// Operands with all slice MSBs 0: peek forces every boundary to 0
	// even though the inner predictor says 1.
	got := p.Predict(Context{EA: 0, EB: 0})
	if got.Carries != 0 || got.Static != 0x7F {
		t.Errorf("peek did not override: %+v", got)
	}
	// Mixed: unresolved boundaries fall through to the inner prediction.
	got = p.Predict(Context{EA: 0x80, EB: 0}) // slice 0 MSBs disagree
	if got.Static&1 != 0 {
		t.Error("boundary 0 should be dynamic")
	}
	if got.Carries&1 != 1 {
		t.Error("dynamic boundary should use inner prediction (1)")
	}
}

func TestOracleAlwaysRight(t *testing.T) {
	o := &Oracle{G: g64}
	if o.Name() != "oracle" {
		t.Error("name")
	}
	f := func(a, b uint64) bool {
		p := o.Predict(Context{EA: a, EB: b, Cin0: 0})
		return p.Carries == bitmath.BoundaryCarriesPacked(a, b, 0, 64, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestHistoryConfigValidate(t *testing.T) {
	bad := []HistoryConfig{
		{Geometry: Geometry{Width: 0, SliceBits: 8}},
		{Geometry: g64, PCMode: ModPC, PCBits: 0},
		{Geometry: g64, PCMode: ModPC, PCBits: 20},
		{Geometry: g64, PCMode: NoPC, PCBits: 3},
		{Geometry: g64, PCMode: PCMode(9)},
		{Geometry: g64, PCMode: NoPC, Threads: ThreadMode(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v) should fail", i, c)
		}
	}
}

func TestHistoryNames(t *testing.T) {
	cases := []struct {
		cfg  HistoryConfig
		want string
	}{
		{HistoryConfig{Geometry: g64}, "Prev"},
		{HistoryConfig{Geometry: g64, PCMode: ModPC, PCBits: 4}, "Prev+ModPC4"},
		{HistoryConfig{Geometry: g64, PCMode: ModPC, PCBits: 4, Threads: ByLtid}, "Ltid+Prev+ModPC4"},
		{HistoryConfig{Geometry: g64, PCMode: FullPC, Threads: ByGtid}, "Gtid+Prev+FullPC"},
		{HistoryConfig{Geometry: g64, PCMode: XorPC, PCBits: 4, Threads: ByLtid}, "Ltid+Prev+XorPC4"},
	}
	for _, c := range cases {
		h, err := NewHistory(c.cfg)
		if err != nil {
			t.Fatalf("%+v: %v", c.cfg, err)
		}
		if h.Name() != c.want {
			t.Errorf("name = %q, want %q", h.Name(), c.want)
		}
	}
}

func TestHistoryLearnsPerPC(t *testing.T) {
	h, err := NewHistory(HistoryConfig{Geometry: g64, PCMode: ModPC, PCBits: 4, AlwaysUpdate: true})
	if err != nil {
		t.Fatal(err)
	}
	ctxA := Context{PC: 3}
	ctxB := Context{PC: 5}
	h.Update(ctxA, 0x15, true)
	h.Update(ctxB, 0x2A, true)
	if p := h.Predict(ctxA); p.Carries != 0x15 {
		t.Errorf("PC3 prediction %#x", p.Carries)
	}
	if p := h.Predict(ctxB); p.Carries != 0x2A {
		t.Errorf("PC5 prediction %#x", p.Carries)
	}
	// PC 19 aliases PC 3 under ModPC4.
	if p := h.Predict(Context{PC: 19}); p.Carries != 0x15 {
		t.Errorf("aliased PC prediction %#x", p.Carries)
	}
	if h.Entries() != 2 {
		t.Errorf("entries = %d", h.Entries())
	}
	h.Reset()
	if h.Entries() != 0 || h.Predict(ctxA).Carries != 0 {
		t.Error("reset did not clear")
	}
}

func TestHistoryThreadModes(t *testing.T) {
	// Gtid fully disambiguates; Ltid shares across warps by lane.
	gt, _ := NewHistory(HistoryConfig{Geometry: g64, Threads: ByGtid, AlwaysUpdate: true})
	lt, _ := NewHistory(HistoryConfig{Geometry: g64, Threads: ByLtid, AlwaysUpdate: true})

	// Thread 5 (lane 5) learns; thread 37 (lane 5 of the next warp) asks.
	learn := Context{Gtid: 5, Ltid: 5}
	ask := Context{Gtid: 37, Ltid: 5}
	gt.Update(learn, 0x3, true)
	lt.Update(learn, 0x3, true)
	if p := gt.Predict(ask); p.Carries != 0 {
		t.Errorf("Gtid mode leaked history across threads: %#x", p.Carries)
	}
	if p := lt.Predict(ask); p.Carries != 0x3 {
		t.Errorf("Ltid mode should share across warps: %#x", p.Carries)
	}
	// Different lane must not see it.
	if p := lt.Predict(Context{Gtid: 38, Ltid: 6}); p.Carries != 0 {
		t.Errorf("Ltid mode leaked across lanes: %#x", p.Carries)
	}
}

func TestHistoryUpdatePolicy(t *testing.T) {
	h, _ := NewHistory(HistoryConfig{Geometry: g64})
	ctx := Context{PC: 1}
	h.Update(ctx, 0x7F, false) // correct prediction → no write-back
	if h.Predict(ctx).Carries != 0 {
		t.Error("non-mispredicted op should not update history")
	}
	h.Update(ctx, 0x7F, true)
	if h.Predict(ctx).Carries != 0x7F {
		t.Error("mispredicted op must update history")
	}
}

func TestXorPCFolding(t *testing.T) {
	h, _ := NewHistory(HistoryConfig{Geometry: g64, PCMode: XorPC, PCBits: 4, AlwaysUpdate: true})
	// PCs 0x13 and 0x31 fold to 1^3 = 2 and 3^1 = 2: they alias.
	h.Update(Context{PC: 0x13}, 0x55, true)
	if p := h.Predict(Context{PC: 0x31}); p.Carries != 0x55 {
		t.Errorf("XOR-folded PCs should alias: %#x", p.Carries)
	}
	// PC 0x10 folds to 1: distinct.
	if p := h.Predict(Context{PC: 0x10}); p.Carries != 0 {
		t.Errorf("distinct fold leaked: %#x", p.Carries)
	}
}

func TestVaLHALLA(t *testing.T) {
	v := NewVaLHALLA(g64)
	if v.Name() != "VaLHALLA" {
		t.Error("name")
	}
	ctx := Context{Gtid: 9}
	if v.Predict(ctx).Carries != 0 {
		t.Error("cold VaLHALLA should predict 0")
	}
	// Majority of boundaries carried → broadcast 1 everywhere.
	v.Update(ctx, 0x7F, false)
	if v.Predict(ctx).Carries != 0x7F {
		t.Error("after all-ones carries, should broadcast 1")
	}
	// Minority → broadcast 0.
	v.Update(ctx, 0x03, false)
	if v.Predict(ctx).Carries != 0 {
		t.Error("after two-of-seven carries, should broadcast 0")
	}
	// Per-thread isolation.
	if v.Predict(Context{Gtid: 10}).Carries != 0 {
		t.Error("VaLHALLA state leaked across threads")
	}
	v.Update(ctx, 0x7F, false)
	v.Reset()
	if v.Predict(ctx).Carries != 0 {
		t.Error("reset failed")
	}
}

func TestRegistryConstructsAllDesigns(t *testing.T) {
	for _, name := range DesignSpace {
		p, err := NewDesign(name, g64)
		if err != nil {
			t.Errorf("NewDesign(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewDesign(%q).Name() = %q", name, p.Name())
		}
		// Smoke: predict/update/reset cycle.
		ctx := Context{PC: 7, Gtid: 33, Ltid: 1, EA: 100, EB: 200}
		pr := p.Predict(ctx)
		if pr.Carries&^g64.BoundaryMask() != 0 {
			t.Errorf("%q predicted out-of-range bits %#x", name, pr.Carries)
		}
		p.Update(ctx, 0x7F, true)
		p.Reset()
	}
	extra := []string{"oracle", "Ltid+Prev+XorPC4+Peek", "Gtid+Prev", "Gtid+Prev+FullPC", "Ltid+Prev+FullPC"}
	for _, name := range extra {
		if _, err := NewDesign(name, g64); err != nil {
			t.Errorf("NewDesign(%q): %v", name, err)
		}
	}
	if _, err := NewDesign("bogus", g64); err == nil {
		t.Error("unknown design should error")
	}
	if _, err := NewDesign("staticZero", Geometry{}); err == nil {
		t.Error("invalid geometry should error")
	}
	if FinalDesign != DesignSpace[len(DesignSpace)-1] {
		t.Error("FinalDesign should be the last Figure 5 point")
	}
}

func TestCRFGeometryAndErrors(t *testing.T) {
	if _, err := NewCRF(0, 32, 7, 1); err == nil {
		t.Error("zero entries should error")
	}
	if _, err := NewCRF(16, 0, 7, 1); err == nil {
		t.Error("zero lanes should error")
	}
	if _, err := NewCRF(16, 32, 0, 1); err == nil {
		t.Error("zero boundaries should error")
	}
	// Regression: Index masks the low PC bits, so a 12-entry CRF would
	// silently alias rows 12..15 onto 8..11 instead of erroring.
	for _, n := range []int{3, 12, 24, 100} {
		if _, err := NewCRF(n, 32, 7, 1); err == nil {
			t.Errorf("non-power-of-two entry count %d should error", n)
		}
	}
	for _, n := range []int{1, 2, 4, 16, 64} {
		c, err := NewCRF(n, 32, 7, 1)
		if err != nil {
			t.Errorf("power-of-two entry count %d rejected: %v", n, err)
			continue
		}
		if got := c.Index(uint32(n + 1)); got != (n+1)%n {
			t.Errorf("entries=%d: Index(%d) = %d, want %d", n, n+1, got, (n+1)%n)
		}
	}
	c := NewDefaultCRF(1)
	if c.Entries() != 16 {
		t.Errorf("entries = %d", c.Entries())
	}
	if c.Index(0x123) != 3 {
		t.Errorf("Index(0x123) = %d, want 3", c.Index(0x123))
	}
	if err := c.WriteBack(0, 1, make([]uint64, 5)); err == nil {
		t.Error("lane-count mismatch should error")
	}
}

func TestCRFReadWriteCycle(t *testing.T) {
	c := NewDefaultCRF(42)
	carries := make([]uint64, 32)
	carries[3] = 0x55
	carries[7] = 0x2A
	c.BeginCycle(1)
	if err := c.WriteBack(5, 1<<3|1<<7, carries); err != nil {
		t.Fatal(err)
	}
	// Write not yet committed within the same cycle.
	if c.ReadLane(5, 3) != 0 {
		t.Error("staged write visible before commit")
	}
	c.BeginCycle(2)
	if c.ReadLane(5, 3) != 0x55 || c.ReadLane(5, 7) != 0x2A {
		t.Error("committed write not visible")
	}
	if c.ReadLane(5, 4) != 0 {
		t.Error("unmasked lane was written")
	}
	// PC 21 aliases PC 5 (same low 4 bits).
	if c.ReadLane(21, 3) != 0x55 {
		t.Error("PC aliasing into the same row failed")
	}
	row := c.ReadRow(5)
	if row[3] != 0x55 || row[7] != 0x2A {
		t.Error("ReadRow wrong")
	}
	st := c.Stats()
	if st.Reads != 1 || st.WritesCommitted != 1 || st.Conflicts != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.LaneBitsWritten != 14 {
		t.Errorf("lane bits written = %d, want 14", st.LaneBitsWritten)
	}
}

func TestCRFZeroMaskWriteIsFree(t *testing.T) {
	c := NewDefaultCRF(1)
	if err := c.WriteBack(0, 0, make([]uint64, 32)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().WriteRequests != 0 {
		t.Error("zero-mask write should not count as a request")
	}
}

// Two warps writing the same row in one cycle: exactly one wins, the
// conflict is counted, and the loser's lanes are untouched.
func TestCRFArbitration(t *testing.T) {
	c := NewDefaultCRF(7)
	w1 := make([]uint64, 32)
	w2 := make([]uint64, 32)
	w1[0] = 0x11
	w2[0] = 0x22
	c.BeginCycle(1)
	_ = c.WriteBack(4, 1, w1)
	_ = c.WriteBack(4, 1, w2)
	c.BeginCycle(2)
	got := c.ReadLane(4, 0)
	if got != 0x11 && got != 0x22 {
		t.Fatalf("lane holds %#x, want one of the two writes", got)
	}
	st := c.Stats()
	if st.Conflicts != 1 || st.WritesCommitted != 1 || st.WriteRequests != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Different rows do not conflict.
	c.Reset()
	c.BeginCycle(1)
	_ = c.WriteBack(1, 1, w1)
	_ = c.WriteBack(2, 1, w2)
	c.BeginCycle(2)
	if c.Stats().Conflicts != 0 {
		t.Error("writes to distinct rows should not conflict")
	}
	if c.ReadLane(1, 0) != 0x11 || c.ReadLane(2, 0) != 0x22 {
		t.Error("both row writes should commit")
	}
}

func TestCRFArbitrationDeterministic(t *testing.T) {
	run := func() []uint64 {
		c := NewDefaultCRF(99)
		rng := rand.New(rand.NewSource(5))
		for cyc := uint64(1); cyc <= 50; cyc++ {
			c.BeginCycle(cyc)
			for w := 0; w < 3; w++ {
				carries := make([]uint64, 32)
				for l := range carries {
					carries[l] = rng.Uint64() & 0x7F
				}
				_ = c.WriteBack(uint32(rng.Intn(16)), rng.Uint32(), carries)
			}
		}
		c.Flush()
		out := make([]uint64, 0, 16*32)
		for pc := uint32(0); pc < 16; pc++ {
			for l := 0; l < 32; l++ {
				out = append(out, c.ReadLane(pc, l))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different CRF state at %d", i)
		}
	}
}

// End-to-end: the final design predictor drives the sliced adder over a
// loop-like correlated value stream and converges to far better accuracy
// than staticZero on the same stream.
func TestFinalDesignBeatsStaticOnLoopStream(t *testing.T) {
	ad, err := adder.New(adder.Config{Width: 64, SliceBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Predictor) (mispredicts, total int) {
		// A synthetic "hot loop": 4 PCs with evolving operands per thread,
		// mimicking Figure 2's pathfinder behaviour.
		for lane := uint8(0); lane < 8; lane++ {
			base := uint64(lane) * 1000
			for iter := 0; iter < 200; iter++ {
				for pc := uint32(0); pc < 4; pc++ {
					a := base + uint64(iter)*uint64(pc+1)
					b := uint64(pc) * 37
					ctx := Context{PC: pc, Gtid: uint32(lane), Ltid: lane, EA: a, EB: b}
					pred := p.Predict(ctx)
					r := ad.Execute(a, b, adder.Add, pred.Carries)
					if r.Mispredicted {
						mispredicts++
					}
					p.Update(ctx, r.ActualCarries, r.Mispredicted)
					total++
				}
			}
		}
		return
	}
	final, _ := NewDesign(FinalDesign, g64)
	zero, _ := NewDesign("staticZero", g64)
	fm, ft := run(final)
	zm, zt := run(zero)
	frate := float64(fm) / float64(ft)
	zrate := float64(zm) / float64(zt)
	if frate >= zrate {
		t.Errorf("final design rate %.3f not better than staticZero %.3f", frate, zrate)
	}
	if frate > 0.15 {
		t.Errorf("final design misprediction rate %.3f too high on a correlated stream", frate)
	}
}

func TestHistory2AlternationHeuristic(t *testing.T) {
	h, err := NewHistory2(HistoryConfig{Geometry: g64, AlwaysUpdate: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "Prev2" {
		t.Errorf("name = %q", h.Name())
	}
	ctx := Context{PC: 1}
	// Steady stream: agreement → predict the agreed bits.
	h.Update(ctx, 0x55, true)
	h.Update(ctx, 0x55, true)
	if p := h.Predict(ctx); p.Carries != 0x55 {
		t.Errorf("steady stream predicted %#x", p.Carries)
	}
	if h.Agreement(ctx) != 0x7F {
		t.Errorf("agreement = %#x", h.Agreement(ctx))
	}
	// Alternating stream on bit 0: ..., 1, 0 → predict toggle back to 1.
	h.Reset()
	h.Update(ctx, 0x01, true)
	h.Update(ctx, 0x00, true)
	if p := h.Predict(ctx); p.Carries&1 != 1 {
		t.Errorf("alternating bit should be predicted to toggle: %#x", p.Carries)
	}
	if h.DepthStats() != 1 {
		t.Errorf("entries = %d", h.DepthStats())
	}
	// Update policy: no write without misprediction when AlwaysUpdate off.
	h2, _ := NewHistory2(HistoryConfig{Geometry: g64})
	h2.Update(ctx, 0x7F, false)
	if h2.Predict(ctx).Carries != 0 {
		t.Error("non-mispredicted op should not update depth-2 history")
	}
	if _, err := NewHistory2(HistoryConfig{Geometry: Geometry{}}); err == nil {
		t.Error("bad geometry should error")
	}
}

func TestHistory2InRegistry(t *testing.T) {
	p, err := NewDesign("Ltid+Prev2+ModPC4+Peek", g64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Ltid+Prev2+ModPC4+Peek" {
		t.Errorf("name = %q", p.Name())
	}
}

// Arbitration fairness: with two warps persistently contending for the
// same CRF row, both win a non-trivial share of the commits.
func TestCRFArbitrationFairness(t *testing.T) {
	c := NewDefaultCRF(123)
	w1 := make([]uint64, 32)
	w2 := make([]uint64, 32)
	w1[0], w2[0] = 0x11, 0x22
	wins1, wins2 := 0, 0
	for cyc := uint64(1); cyc <= 400; cyc++ {
		c.BeginCycle(cyc)
		_ = c.WriteBack(4, 1, w1)
		_ = c.WriteBack(4, 1, w2)
		c.BeginCycle(cyc + 1) // commit
		switch c.ReadLane(4, 0) {
		case 0x11:
			wins1++
		case 0x22:
			wins2++
		}
	}
	total := wins1 + wins2
	if total != 400 {
		t.Fatalf("commits = %d", total)
	}
	if wins1 < total/4 || wins2 < total/4 {
		t.Errorf("arbitration unfair: %d vs %d", wins1, wins2)
	}
}

// Registry-wide safety properties: no design ever predicts bits outside
// the boundary mask, claims a wrong static resolution, or panics across
// the full context space.
func TestAllDesignsSafetyProperties(t *testing.T) {
	names := append(append([]string{}, DesignSpace...),
		"oracle", "CASA", "VLSA", "Ltid+Prev+XorPC4+Peek", "Ltid+Prev2+ModPC4+Peek",
		"Gtid+Prev", "Gtid+Prev+FullPC", "Ltid+Prev+FullPC")
	for _, name := range names {
		p, err := NewDesign(name, g64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f := func(a, b uint64, pc, gtid uint32, ltid uint8, cinRaw, mispred bool) bool {
			cin := uint(0)
			if cinRaw {
				cin = 1
			}
			ctx := Context{PC: pc, Gtid: gtid, Ltid: ltid % 32, EA: a, EB: b, Cin0: cin}
			pred := p.Predict(ctx)
			if pred.Carries&^g64.BoundaryMask() != 0 || pred.Static&^g64.BoundaryMask() != 0 {
				return false
			}
			truth := bitmath.BoundaryCarriesPacked(a, b, cin, 64, 8)
			if (pred.Carries^truth)&pred.Static != 0 {
				return false // a "static" (guaranteed) bit was wrong
			}
			p.Update(ctx, truth, mispred)
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
