package speculate

import "fmt"

// DesignSpace lists the carry-speculation design points of Figure 5, in
// the paper's left-to-right order, ending at the chosen ST² design.
var DesignSpace = []string{
	"staticOne",
	"staticZero",
	"VaLHALLA",
	"VaLHALLA+Peek",
	"Prev",
	"Prev+Peek",
	"Prev+ModPC1+Peek",
	"Prev+ModPC2+Peek",
	"Prev+ModPC4+Peek",
	"Prev+ModPC8+Peek",
	"Gtid+Prev+ModPC4+Peek",
	"Ltid+Prev+ModPC4+Peek",
}

// FinalDesign is the speculation mechanism ST² GPU ships with.
const FinalDesign = "Ltid+Prev+ModPC4+Peek"

// NewDesign constructs a named design point for the given geometry.
// Beyond the Figure 5 set it also accepts "oracle" and the
// "Ltid+Prev+XorPC4+Peek" hash-indexing ablation.
func NewDesign(name string, g Geometry) (Predictor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	hist := func(pcMode PCMode, pcBits uint, threads ThreadMode, peek bool) (Predictor, error) {
		h, err := NewHistory(HistoryConfig{
			Geometry: g, PCMode: pcMode, PCBits: pcBits, Threads: threads,
		})
		if err != nil {
			return nil, err
		}
		if peek {
			return WithPeek(g, h), nil
		}
		return h, nil
	}
	switch name {
	case "staticZero":
		return NewStaticZero(g), nil
	case "staticOne":
		return NewStaticOne(g), nil
	case "VaLHALLA":
		return NewVaLHALLA(g), nil
	case "VaLHALLA+Peek":
		return WithPeek(g, NewVaLHALLA(g)), nil
	case "Prev":
		return hist(NoPC, 0, SharedThreads, false)
	case "Prev+Peek":
		return hist(NoPC, 0, SharedThreads, true)
	case "Prev+ModPC1+Peek":
		return hist(ModPC, 1, SharedThreads, true)
	case "Prev+ModPC2+Peek":
		return hist(ModPC, 2, SharedThreads, true)
	case "Prev+ModPC4+Peek":
		return hist(ModPC, 4, SharedThreads, true)
	case "Prev+ModPC8+Peek":
		return hist(ModPC, 8, SharedThreads, true)
	case "Gtid+Prev+ModPC4+Peek":
		return hist(ModPC, 4, ByGtid, true)
	case "Ltid+Prev+ModPC4+Peek":
		return hist(ModPC, 4, ByLtid, true)
	case "Ltid+Prev+XorPC4+Peek":
		return hist(XorPC, 4, ByLtid, true)
	// Temporal-axis exploration: depth-2 history with the alternation
	// heuristic, wrapped in Peek like the final design.
	case "Ltid+Prev2+ModPC4+Peek":
		h2, err := NewHistory2(HistoryConfig{Geometry: g, PCMode: ModPC, PCBits: 4, Threads: ByLtid})
		if err != nil {
			return nil, err
		}
		return WithPeek(g, h2), nil
	// The three Figure 3 analysis points compare each operation's carries
	// with the *immediately preceding* operation in the same bucket, so
	// their history updates on every operation, not only on mispredictions.
	case "Gtid+Prev+FullPC":
		return NewHistory(HistoryConfig{Geometry: g, PCMode: FullPC, Threads: ByGtid, AlwaysUpdate: true})
	case "Ltid+Prev+FullPC":
		return NewHistory(HistoryConfig{Geometry: g, PCMode: FullPC, Threads: ByLtid, AlwaysUpdate: true})
	case "Gtid+Prev":
		return NewHistory(HistoryConfig{Geometry: g, PCMode: NoPC, Threads: ByGtid, AlwaysUpdate: true})
	case "CASA":
		return NewCASA(g), nil
	case "VLSA":
		return NewVLSA(g), nil
	case "oracle":
		return &Oracle{G: g}, nil
	default:
		return nil, fmt.Errorf("speculate: unknown design %q", name)
	}
}
