package speculate

import "strings"

// History2 explores the *temporal axis* of the paper's design space
// (Section I: "…along the spatial axis (PC correlation), temporal axis
// (history depth), and history sharing among threads"): a depth-2
// previous-carry table. Each bucket keeps the carries of the last two
// operations; per boundary the prediction is the bit the two histories
// agree on, falling back to the most recent bit when they disagree.
//
// The paper lands on depth 1 (the plain Prev tables); this implementation
// lets the claim be re-checked — see BenchmarkAblationHistoryDepth.
type History2 struct {
	cfg   HistoryConfig
	last  map[uint64]uint64 // most recent carries
	prev2 map[uint64]uint64 // carries before that
}

// NewHistory2 builds a depth-2 Prev-family predictor.
func NewHistory2(cfg HistoryConfig) (*History2, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &History2{
		cfg:   cfg,
		last:  make(map[uint64]uint64),
		prev2: make(map[uint64]uint64),
	}, nil
}

// Name implements Predictor: the depth-1 name with "Prev" → "Prev2".
func (h *History2) Name() string {
	return strings.Replace(h.cfg.Name(), "Prev", "Prev2", 1)
}

func (h *History2) key(ctx Context) uint64 {
	// Same bucketing as the depth-1 History.
	tmp := History{cfg: h.cfg}
	return tmp.key(ctx)
}

// Predict implements Predictor: where the two histories agree, predict
// the agreed bit; where they disagree the stream may be alternating
// (carry toggling every iteration), so predict the older bit — i.e., the
// flip of the most recent one. A pure "predict last" depth-2 table would
// be identical to depth 1; the alternation heuristic is what extra depth
// can actually buy.
func (h *History2) Predict(ctx Context) Prediction {
	k := h.key(ctx)
	last := h.last[k]
	old := h.prev2[k]
	mask := h.cfg.Geometry.BoundaryMask()
	agree := ^(last ^ old)
	pred := (last & agree) | (old &^ agree)
	return Prediction{Carries: pred & mask}
}

// Update implements Predictor.
func (h *History2) Update(ctx Context, actual uint64, mispredicted bool) {
	if !mispredicted && !h.cfg.AlwaysUpdate {
		return
	}
	k := h.key(ctx)
	h.prev2[k] = h.last[k]
	h.last[k] = actual & h.cfg.Geometry.BoundaryMask()
}

// Reset implements Predictor.
func (h *History2) Reset() {
	h.last = make(map[uint64]uint64)
	h.prev2 = make(map[uint64]uint64)
}

// Agreement returns, for the bucket of ctx, the boundary mask where the
// two stored histories agree — the predictor's confidence signal.
func (h *History2) Agreement(ctx Context) uint64 {
	k := h.key(ctx)
	return ^(h.last[k] ^ h.prev2[k]) & h.cfg.Geometry.BoundaryMask()
}

// DepthStats reports table occupancy.
func (h *History2) DepthStats() (entries int) { return len(h.last) }
