package speculate

import "st2gpu/internal/bitmath"

// VaLHALLA models the prior state-of-the-art variable-latency adder the
// paper compares against (Gok & Hardavellas, GLSVLSI 2017). Its defining
// properties, per Section IV-B:
//
//   - it predicts a single 1-bit carry for the entire adder and broadcasts
//     it to every slice;
//   - the prediction is history-aware and local to one adder (no sharing
//     across threads, no PC disambiguation);
//   - it speculates on *every* operation (no Peek-style static filtering).
//
// We model the per-adder history as one bit per hardware thread context
// (keyed by global thread id — the optimistic reading, consistent with the
// paper's note that the non-final design points ignore implementation
// constraints), updated to the majority of the boundary carries the
// previous operation actually produced ("history aware local-carry").
type VaLHALLA struct {
	g    Geometry
	bits map[uint32]uint8 // gtid → last broadcast bit (0 or 1)
}

// NewVaLHALLA builds the baseline predictor.
func NewVaLHALLA(g Geometry) *VaLHALLA {
	return &VaLHALLA{g: g, bits: make(map[uint32]uint8)}
}

// Name implements Predictor.
func (v *VaLHALLA) Name() string { return "VaLHALLA" }

// Predict implements Predictor: broadcast the thread's single history bit
// to all boundaries.
func (v *VaLHALLA) Predict(ctx Context) Prediction {
	if v.bits[ctx.Gtid] == 1 {
		return Prediction{Carries: v.g.BoundaryMask()}
	}
	return Prediction{}
}

// Update implements Predictor: the broadcast bit becomes the majority of
// the boundary carries the operation actually produced. VaLHALLA updates
// on every operation (it has no notion of selective write-back).
func (v *VaLHALLA) Update(ctx Context, actual uint64, _ bool) {
	nb := int(v.g.Boundaries())
	ones := bitmath.PopCount64(actual & v.g.BoundaryMask())
	if 2*ones >= nb+1 { // strict majority of boundaries carried
		v.bits[ctx.Gtid] = 1
	} else {
		v.bits[ctx.Gtid] = 0
	}
}

// Reset implements Predictor.
func (v *VaLHALLA) Reset() { v.bits = make(map[uint32]uint8) }
