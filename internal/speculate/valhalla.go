package speculate

import (
	"math/bits"

	"st2gpu/internal/bitmath"
)

// VaLHALLA models the prior state-of-the-art variable-latency adder the
// paper compares against (Gok & Hardavellas, GLSVLSI 2017). Its defining
// properties, per Section IV-B:
//
//   - it predicts a single 1-bit carry for the entire adder and broadcasts
//     it to every slice;
//   - the prediction is history-aware and local to one adder (no sharing
//     across threads, no PC disambiguation);
//   - it speculates on *every* operation (no Peek-style static filtering).
//
// We model the per-adder history as one bit per hardware thread context
// (keyed by global thread id — the optimistic reading, consistent with the
// paper's note that the non-final design points ignore implementation
// constraints), updated to the majority of the boundary carries the
// previous operation actually produced ("history aware local-carry").
//
// The table is a gtid-indexed slice grown on demand: global thread ids
// are dense small integers in every workload, and an unwritten slot
// reads 0 exactly like the missing map entry it replaces — the map this
// used to be dominated the design-batched sweep's profile.
type VaLHALLA struct {
	g        Geometry
	bits     []uint8          // gtid → last broadcast bit, gtids below maxValhallaDense
	overflow map[uint32]uint8 // sparse fallback for pathologically large gtids
}

// maxValhallaDense bounds the dense table: real launches number their
// global threads densely from zero, so the slice covers them all; an
// adversarially huge gtid (fuzzing, property tests) lands in the
// overflow map instead of sizing a multi-GiB allocation.
const maxValhallaDense = 1 << 22

// NewVaLHALLA builds the baseline predictor.
func NewVaLHALLA(g Geometry) *VaLHALLA {
	return &VaLHALLA{g: g}
}

// Name implements Predictor.
func (v *VaLHALLA) Name() string { return "VaLHALLA" }

// bit returns the thread's history bit (0 when never written).
func (v *VaLHALLA) bit(gtid uint32) uint8 {
	if uint64(gtid) < uint64(len(v.bits)) {
		return v.bits[gtid]
	}
	if gtid >= maxValhallaDense {
		return v.overflow[gtid]
	}
	return 0
}

// setBit writes the thread's history bit, growing the dense table to
// cover it (or spilling to the overflow map past the dense bound).
func (v *VaLHALLA) setBit(gtid uint32, b uint8) {
	if gtid >= maxValhallaDense {
		if v.overflow == nil {
			v.overflow = make(map[uint32]uint8)
		}
		v.overflow[gtid] = b
		return
	}
	if uint64(gtid) >= uint64(len(v.bits)) {
		grown := make([]uint8, 1<<bits.Len64(uint64(gtid)))
		copy(grown, v.bits)
		v.bits = grown
	}
	v.bits[gtid] = b
}

// Predict implements Predictor: broadcast the thread's single history bit
// to all boundaries.
func (v *VaLHALLA) Predict(ctx Context) Prediction {
	if v.bit(ctx.Gtid) == 1 {
		return Prediction{Carries: v.g.BoundaryMask()}
	}
	return Prediction{}
}

// Update implements Predictor: the broadcast bit becomes the majority of
// the boundary carries the operation actually produced. VaLHALLA updates
// on every operation (it has no notion of selective write-back).
func (v *VaLHALLA) Update(ctx Context, actual uint64, _ bool) {
	nb := int(v.g.Boundaries())
	ones := bitmath.PopCount64(actual & v.g.BoundaryMask())
	if 2*ones >= nb+1 { // strict majority of boundaries carried
		v.setBit(ctx.Gtid, 1)
	} else {
		v.setBit(ctx.Gtid, 0)
	}
}

// Reset implements Predictor.
func (v *VaLHALLA) Reset() { v.bits, v.overflow = nil, nil }

// PredictWarp implements WarpPredictor: one table load per lane, no
// Context materialization.
func (v *VaLHALLA) PredictWarp(_, gtidBase, active, _ uint32, _, _, carries, static []uint64) {
	mask := v.g.BoundaryMask()
	j := 0
	for m := active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		carries[j] = uint64(v.bit(gtidBase+uint32(l))) * mask
		static[j] = 0
		j++
	}
}

// UpdateWarp implements WarpPredictor: every active lane writes its
// majority bit (VaLHALLA ignores the mispredict mask), matching the
// sequential per-lane Update order.
func (v *VaLHALLA) UpdateWarp(_, gtidBase, active, _, _ uint32, _, _, actual []uint64) {
	nb := int(v.g.Boundaries())
	mask := v.g.BoundaryMask()
	if active == 0 {
		return
	}
	hi := gtidBase + uint32(31-bits.LeadingZeros32(active))
	dense := hi < maxValhallaDense && hi >= gtidBase // no wraparound
	if dense && uint64(hi) >= uint64(len(v.bits)) {
		// One growth covers the warp: lanes update gtidBase..hi.
		v.setBit(hi, 0)
	}
	j := 0
	for m := active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		ones := bits.OnesCount64(actual[j] & mask)
		var b uint8
		if 2*ones >= nb+1 {
			b = 1
		}
		if dense {
			v.bits[gtidBase+uint32(l)] = b
		} else {
			v.setBit(gtidBase+uint32(l), b)
		}
		j++
	}
}
