package speculate

import (
	"math/bits"

	"st2gpu/internal/bitmath"
)

// WarpPredictor is the optional warp-batched fast path over Predictor:
// one call covers every active lane of a warp-synchronous operation with
// the lanes' operands and results in flat ascending-lane slices — the
// j-th set bit of active owns index j (popcount(active) entries total).
//
// Semantics must be bit-identical to the per-lane Predictor calls the
// package-level PredictWarp/UpdateWarp fall back to: all predictions
// read the pre-update state (the hardware reads the CRF row once per
// warp), and updates land in ascending lane order (last writer wins for
// shared entries, exactly as the sequential per-lane loop behaves).
type WarpPredictor interface {
	// PredictWarp fills carries[j]/static[j] for the j-th active lane.
	// cin bit l is lane l's injected slice-0 carry.
	PredictWarp(pc, gtidBase, active, cin uint32, ea, eb, carries, static []uint64)
	// UpdateWarp delivers the true boundary carries for every active
	// lane; bit l of mispred marks lane l as having mispredicted (the
	// condition under which the hardware performs a CRF write-back).
	UpdateWarp(pc, gtidBase, active, mispred, cin uint32, ea, eb, actual []uint64)
}

// PredictWarp evaluates p for every active lane, taking the predictor's
// batched fast path when it has one and per-lane Predict otherwise.
// ea/eb hold the active lanes' effective operands in ascending-lane
// order; carries/static must have popcount(active) entries.
func PredictWarp(p Predictor, pc, gtidBase, active, cin uint32, ea, eb, carries, static []uint64) {
	if wp, ok := p.(WarpPredictor); ok {
		wp.PredictWarp(pc, gtidBase, active, cin, ea, eb, carries, static)
		return
	}
	j := 0
	for m := active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		pr := p.Predict(Context{
			PC: pc, Gtid: gtidBase + uint32(l), Ltid: uint8(l),
			EA: ea[j], EB: eb[j], Cin0: uint(cin >> l & 1),
		})
		carries[j], static[j] = pr.Carries, pr.Static
		j++
	}
}

// UpdateWarp delivers one warp's true boundary carries to p, taking the
// batched fast path when available and per-lane Update otherwise. actual
// holds the (already kind-masked) boundary carries of the active lanes in
// ascending-lane order; bit l of mispred marks lane l as mispredicted.
func UpdateWarp(p Predictor, pc, gtidBase, active, mispred, cin uint32, ea, eb, actual []uint64) {
	if wp, ok := p.(WarpPredictor); ok {
		wp.UpdateWarp(pc, gtidBase, active, mispred, cin, ea, eb, actual)
		return
	}
	j := 0
	for m := active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		p.Update(Context{
			PC: pc, Gtid: gtidBase + uint32(l), Ltid: uint8(l),
			EA: ea[j], EB: eb[j], Cin0: uint(cin >> l & 1),
		}, actual[j], mispred&(1<<l) != 0)
		j++
	}
}

// --- batched fast paths ---

// PredictWarp implements WarpPredictor: a constant per boundary, no state.
func (s *staticPredictor) PredictWarp(_, _, active, _ uint32, _, _, carries, static []uint64) {
	v := s.value & s.g.BoundaryMask()
	n := bits.OnesCount32(active)
	for j := 0; j < n; j++ {
		carries[j], static[j] = v, 0
	}
}

// UpdateWarp implements WarpPredictor: static predictors never learn.
func (s *staticPredictor) UpdateWarp(_, _, _, _, _ uint32, _, _, _ []uint64) {}

// pcPart folds the PC exactly as key does, hoisted out of the per-lane
// loop: within a warp-synchronous op every lane shares the PC.
func (h *History) pcPart(pc uint32) uint64 {
	switch h.cfg.PCMode {
	case ModPC:
		return uint64(pc) & bitmath.Mask(h.cfg.PCBits)
	case FullPC:
		return uint64(pc)
	case XorPC:
		folded := uint64(0)
		p := uint64(pc)
		for p != 0 {
			folded ^= p & bitmath.Mask(h.cfg.PCBits)
			p >>= h.cfg.PCBits
		}
		return folded
	default:
		return 0
	}
}

// PredictWarp implements WarpPredictor: the PC fold happens once per warp
// and shared-thread tables perform a single map lookup for all 32 lanes.
func (h *History) PredictWarp(pc, gtidBase, active, _ uint32, _, _, carries, static []uint64) {
	pcPart := h.pcPart(pc)
	mask := h.cfg.Geometry.BoundaryMask()
	switch h.cfg.Threads {
	case ByLtid:
		if h.dense != nil {
			// Dense fast path: lane l's slot sits at pcPart<<5|l — 32
			// consecutive array loads, no hashing.
			row := h.dense[pcPart<<5 : pcPart<<5+32]
			j := 0
			for m := active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				carries[j] = row[l] & mask
				static[j] = 0
				j++
			}
			return
		}
		j := 0
		for m := active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			carries[j] = h.load(pcPart<<5|uint64(l)) & mask
			static[j] = 0
			j++
		}
	case ByGtid:
		j := 0
		for m := active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			carries[j] = h.load(h.gtidKey(pcPart, gtidBase+uint32(l))) & mask
			static[j] = 0
			j++
		}
	default: // SharedThreads: one bucket serves the whole warp
		v := h.load(pcPart) & mask
		n := bits.OnesCount32(active)
		for j := 0; j < n; j++ {
			carries[j], static[j] = v, 0
		}
	}
}

// UpdateWarp implements WarpPredictor. The write set is the mispredicting
// lanes (all active lanes under AlwaysUpdate), written in ascending lane
// order so shared buckets keep the sequential loop's last-writer-wins.
func (h *History) UpdateWarp(pc, gtidBase uint32, active, mispred, _ uint32, _, _, actual []uint64) {
	write := mispred
	if h.cfg.AlwaysUpdate {
		write = active
	}
	if write == 0 {
		return
	}
	pcPart := h.pcPart(pc)
	mask := h.cfg.Geometry.BoundaryMask()
	j := 0
	for m := active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		if write&(1<<l) != 0 {
			var key uint64
			switch h.cfg.Threads {
			case ByLtid:
				key = pcPart<<5 | uint64(l)
			case ByGtid:
				key = h.gtidKey(pcPart, gtidBase+uint32(l))
			default:
				key = pcPart
			}
			h.store(key, actual[j]&mask)
		}
		j++
	}
}

// PredictWarp implements WarpPredictor: the inner predictor runs through
// its own batched dispatch, then the Peek filter overlays the
// statically-resolved boundaries branchlessly per lane.
func (p *peekPredictor) PredictWarp(pc, gtidBase, active, cin uint32, ea, eb, carries, static []uint64) {
	PredictWarp(p.inner, pc, gtidBase, active, cin, ea, eb, carries, static)
	n := bits.OnesCount32(active)
	for j := 0; j < n; j++ {
		pk, values := PeekBits(p.g, ea[j], eb[j])
		carries[j] = (carries[j] &^ pk) | values
		static[j] |= pk
	}
}

// UpdateWarp implements WarpPredictor.
func (p *peekPredictor) UpdateWarp(pc, gtidBase, active, mispred, cin uint32, ea, eb, actual []uint64) {
	UpdateWarp(p.inner, pc, gtidBase, active, mispred, cin, ea, eb, actual)
}
