package speculate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"st2gpu/internal/bitmath"
)

func TestCASAKnownCases(t *testing.T) {
	c := NewCASA(g64)
	if c.Name() != "CASA" {
		t.Error("name")
	}
	// Both slice-0 MSBs set → boundary 0 predicted 1.
	p := c.Predict(Context{EA: 0x80, EB: 0x80})
	if p.Carries&1 != 1 {
		t.Error("both MSBs set should predict carry")
	}
	// Neither set → 0.
	p = c.Predict(Context{EA: 0x7F, EB: 0x7F})
	if p.Carries&1 != 0 {
		t.Error("no MSBs set should predict no carry")
	}
	// Exactly one set → CASA bets 1.
	p = c.Predict(Context{EA: 0x80, EB: 0})
	if p.Carries&1 != 1 {
		t.Error("one MSB set: CASA predicts propagation")
	}
	c.Update(Context{}, 0x7F, true) // no-op
	c.Reset()
}

// CASA's guaranteed cases are never wrong (the Peek subset).
func TestCASAGuaranteedSubset(t *testing.T) {
	c := NewCASA(g64)
	f := func(a, b uint64) bool {
		pred := c.Predict(Context{EA: a, EB: b})
		truth := bitmath.BoundaryCarriesPacked(a, b, 0, 64, 8)
		static, values := PeekBits(g64, a, b)
		// Where Peek can resolve, CASA must agree with the truth too.
		return (pred.Carries^truth)&static == 0 && (values^truth)&static == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// CASA should beat both static predictors on random operands (its
// guaranteed cases are free; its coin-flip cases are no worse).
func TestCASABeatsStaticsOnRandom(t *testing.T) {
	casa := NewCASA(g64)
	zero := NewStaticZero(g64)
	rng := rand.New(rand.NewSource(9))
	var casaWrong, zeroWrong int
	const n = 20000
	for i := 0; i < n; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		truth := bitmath.BoundaryCarriesPacked(a, b, 0, 64, 8)
		ctx := Context{EA: a, EB: b}
		casaWrong += bitmath.PopCount64((casa.Predict(ctx).Carries ^ truth) & 0x7F)
		zeroWrong += bitmath.PopCount64((zero.Predict(ctx).Carries ^ truth) & 0x7F)
	}
	if casaWrong >= zeroWrong {
		t.Errorf("CASA (%d wrong boundaries) should beat staticZero (%d) on random operands",
			casaWrong, zeroWrong)
	}
}

func TestVLSA(t *testing.T) {
	v := NewVLSA(g64)
	if v.Name() != "VLSA" {
		t.Error("name")
	}
	if p := v.Predict(Context{EA: ^uint64(0), EB: ^uint64(0)}); p.Carries != 0 || p.Static != 0 {
		t.Error("VLSA always speculates zero")
	}
	v.Update(Context{}, 0x7F, true)
	v.Reset()
	if v.Predict(Context{}).Carries != 0 {
		t.Error("VLSA is stateless")
	}
}

func TestRelatedWorkInRegistry(t *testing.T) {
	for _, name := range []string{"CASA", "VLSA"} {
		p, err := NewDesign(name, g64)
		if err != nil {
			t.Fatalf("NewDesign(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("name = %q", p.Name())
		}
	}
}
