package speculate

import (
	"fmt"
	"math/rand"

	"st2gpu/internal/bitmath"
)

// CRFStats counts Carry Register File activity for the energy model and
// the per-row occupancy observability layer.
type CRFStats struct {
	Reads           uint64 // full-row reads (one per warp add/sub issue)
	WriteRequests   uint64 // warp write-back attempts
	WritesCommitted uint64 // warp write-backs that won arbitration
	Conflicts       uint64 // warp write-backs dropped by arbitration
	LaneBitsWritten uint64 // total lane sub-entries actually updated

	// RowReads[i] counts reads that indexed row i — the per-entry read
	// traffic behind the PC[3:0] indexing scheme.
	RowReads []uint64
	// RowDistinctPCs[i] counts how many distinct PCs read row i: >1 means
	// PCs alias into the same entry and overwrite each other's carry
	// history (the occupancy/alias view of the paper's 16-entry design).
	RowDistinctPCs []uint64
}

// Merge folds another CRF's counters into s. Per-row slices merge
// element-wise (all SMs share one geometry); distinct-PC counts add, so
// the merged value is total alias load across shards, not a distinct
// count over the union.
func (s *CRFStats) Merge(o CRFStats) {
	s.Reads += o.Reads
	s.WriteRequests += o.WriteRequests
	s.WritesCommitted += o.WritesCommitted
	s.Conflicts += o.Conflicts
	s.LaneBitsWritten += o.LaneBitsWritten
	if len(o.RowReads) > 0 {
		if s.RowReads == nil {
			s.RowReads = make([]uint64, len(o.RowReads))
			s.RowDistinctPCs = make([]uint64, len(o.RowDistinctPCs))
		}
		for i, v := range o.RowReads {
			s.RowReads[i] += v
		}
		for i, v := range o.RowDistinctPCs {
			s.RowDistinctPCs[i] += v
		}
	}
}

// CRF models the per-SM Carry Register File of Section IV-C: a small
// register file of Entries rows (indexed by the low PC bits), each holding
// the packed boundary-carry history of all 32 warp lanes. The default
// geometry is the paper's 16 × 224 bits (16 entries × 32 lanes × 7 bits).
//
// Writes are staged per cycle: warps in the write-back stage of the same
// cycle that target the same row contend for its single write port, and a
// (deterministic, seeded) random arbiter picks one winner per row — the
// paper's "random arbitration" with everyone else's update dropped.
type CRF struct {
	entries int
	lanes   int
	nb      uint // boundary bits per lane

	rows [][]uint64 // [entry][lane] → packed carries

	cycle  uint64
	staged map[int][]crfWrite // row → this cycle's candidate writes
	rng    *rand.Rand
	stats  CRFStats

	rowReads []uint64            // per-row read counts
	rowPCs   []map[uint32]struct{} // per-row set of PCs observed reading it
}

type crfWrite struct {
	laneMask uint32   // which lanes this warp updates (mispredicted threads)
	carries  []uint64 // per-lane packed boundary carries (len 32)
}

// NewCRF builds a CRF with the given geometry. Entries must be a power of
// two: Index selects a row by masking the low PC bits, so any other row
// count would silently alias rows instead of using them all. Seed fixes
// the arbitration order so simulations are reproducible.
func NewCRF(entries, lanes int, boundaries uint, seed int64) (*CRF, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("speculate: CRF entry count %d not a power of two", entries)
	}
	if lanes <= 0 || boundaries == 0 || boundaries > 63 {
		return nil, fmt.Errorf("speculate: bad CRF geometry %d×%d×%d", entries, lanes, boundaries)
	}
	rows := make([][]uint64, entries)
	for i := range rows {
		rows[i] = make([]uint64, lanes)
	}
	return &CRF{
		entries:  entries,
		lanes:    lanes,
		nb:       boundaries,
		rows:     rows,
		staged:   make(map[int][]crfWrite),
		rng:      rand.New(rand.NewSource(seed)),
		rowReads: make([]uint64, entries),
		rowPCs:   make([]map[uint32]struct{}, entries),
	}, nil
}

// NewDefaultCRF builds the paper's 16-entry, 32-lane, 7-bit CRF.
func NewDefaultCRF(seed int64) *CRF {
	c, err := NewCRF(16, 32, 7, seed)
	if err != nil {
		panic("speculate: default CRF geometry invalid: " + err.Error())
	}
	return c
}

// Entries returns the row count.
func (c *CRF) Entries() int { return c.entries }

// Index folds a PC into a row index (the PC[3:0] read index). The mask is
// exact because NewCRF rejects non-power-of-two entry counts.
func (c *CRF) Index(pc uint32) int { return int(pc) & (c.entries - 1) }

// ReadRow returns the committed history of every lane in the row holding
// pc. It counts as one 224-bit read port access.
func (c *CRF) ReadRow(pc uint32) []uint64 {
	c.stats.Reads++
	idx := c.Index(pc)
	c.rowReads[idx]++
	set := c.rowPCs[idx]
	if set == nil {
		set = make(map[uint32]struct{}, 2)
		c.rowPCs[idx] = set
	}
	if _, seen := set[pc]; !seen {
		set[pc] = struct{}{}
	}
	row := c.rows[idx]
	out := make([]uint64, len(row))
	copy(out, row)
	return out
}

// ReadLane returns one lane's committed history without charging a read
// (helper for tests and trace tools).
func (c *CRF) ReadLane(pc uint32, lane int) uint64 {
	return c.rows[c.Index(pc)][lane] & bitmath.Mask(c.nb)
}

// BeginCycle advances the CRF clock, committing the previous cycle's
// staged writes with per-row random arbitration.
func (c *CRF) BeginCycle(cycle uint64) {
	if cycle == c.cycle && len(c.staged) == 0 {
		c.cycle = cycle
		return
	}
	c.commit()
	c.cycle = cycle
}

// WriteBack stages a warp's CRF update for the current cycle: for every
// lane in laneMask, the lane's boundary-carry history becomes
// carries[lane]. Lanes not in the mask are untouched (per-lane write
// enables). Arbitration happens when the cycle advances (or Flush runs).
func (c *CRF) WriteBack(pc uint32, laneMask uint32, carries []uint64) error {
	if laneMask == 0 {
		return nil // nothing mispredicted; hardware performs no write
	}
	if len(carries) != c.lanes {
		return fmt.Errorf("speculate: write-back with %d lanes, CRF has %d", len(carries), c.lanes)
	}
	row := c.Index(pc)
	cp := make([]uint64, c.lanes)
	copy(cp, carries)
	c.staged[row] = append(c.staged[row], crfWrite{laneMask: laneMask, carries: cp})
	c.stats.WriteRequests++
	return nil
}

// Flush commits all staged writes immediately (end of kernel).
func (c *CRF) Flush() { c.commit() }

func (c *CRF) commit() {
	if len(c.staged) == 0 {
		return
	}
	// Iterate rows in order for determinism; map iteration order must not
	// influence the RNG stream.
	for row := 0; row < c.entries; row++ {
		cands := c.staged[row]
		if len(cands) == 0 {
			continue
		}
		winner := 0
		if len(cands) > 1 {
			winner = c.rng.Intn(len(cands))
			c.stats.Conflicts += uint64(len(cands) - 1)
		}
		w := cands[winner]
		c.stats.WritesCommitted++
		for lane := 0; lane < c.lanes; lane++ {
			if w.laneMask&(1<<lane) != 0 {
				c.rows[row][lane] = w.carries[lane] & bitmath.Mask(c.nb)
				c.stats.LaneBitsWritten += uint64(c.nb)
			}
		}
	}
	c.staged = make(map[int][]crfWrite)
}

// Stats returns a copy of the activity counters, including the per-row
// read and distinct-PC (alias occupancy) views.
func (c *CRF) Stats() CRFStats {
	out := c.stats
	out.RowReads = make([]uint64, c.entries)
	copy(out.RowReads, c.rowReads)
	out.RowDistinctPCs = make([]uint64, c.entries)
	for i, set := range c.rowPCs {
		out.RowDistinctPCs[i] = uint64(len(set))
	}
	return out
}

// Reset clears history, staging, and statistics (kernel relaunch).
func (c *CRF) Reset() {
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] = 0
		}
	}
	c.staged = make(map[int][]crfWrite)
	c.stats = CRFStats{}
	c.cycle = 0
	for i := range c.rowReads {
		c.rowReads[i] = 0
		c.rowPCs[i] = nil
	}
}
