package speculate

import (
	"math/bits"
	"math/rand"
	"testing"

	"st2gpu/internal/bitmath"
)

// peekBitsRef is the pre-gather reference implementation of PeekBits.
func peekBitsRef(g Geometry, ea, eb uint64) (static, values uint64) {
	nb := g.Boundaries()
	agree := ^(ea ^ eb)
	both := ea & eb
	for i := uint(0); i < nb; i++ {
		msbPos := (i+1)*g.SliceBits - 1
		static |= (agree >> msbPos & 1) << i
		values |= (both >> msbPos & 1) << i
	}
	return static, values
}

// TestPeekBitsMatchesReference pins the GatherMSB8 fast path (and the
// loop fallback for non-8-bit slices) against the per-boundary walk.
func TestPeekBitsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	geoms := []Geometry{
		{Width: 64, SliceBits: 8},
		{Width: 32, SliceBits: 8},
		{Width: 52, SliceBits: 8},
		{Width: 64, SliceBits: 16}, // exercises the loop fallback
		{Width: 64, SliceBits: 4},
	}
	for _, g := range geoms {
		for i := 0; i < 2000; i++ {
			ea, eb := rng.Uint64(), rng.Uint64()
			switch i {
			case 0:
				ea, eb = 0, 0
			case 1:
				ea, eb = ^uint64(0), ^uint64(0)
			case 2:
				ea, eb = ^uint64(0), 0
			}
			wantS, wantV := peekBitsRef(g, ea, eb)
			gotS, gotV := PeekBits(g, ea, eb)
			if gotS != wantS || gotV != wantV {
				t.Fatalf("PeekBits(%+v, %#x, %#x) = (%#x, %#x), want (%#x, %#x)",
					g, ea, eb, gotS, gotV, wantS, wantV)
			}
		}
	}
}

// TestPeekBitsWarpMatchesScalar checks the warp-batched Peek fills every
// lane exactly as the scalar call would.
func TestPeekBitsWarpMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := Geometry{Width: 64, SliceBits: 8}
	n := 32
	ea, eb := make([]uint64, n), make([]uint64, n)
	for j := range ea {
		ea[j], eb[j] = rng.Uint64(), rng.Uint64()
	}
	static, values := make([]uint64, n), make([]uint64, n)
	PeekBitsWarp(g, ea, eb, static, values)
	for j := range ea {
		wantS, wantV := PeekBits(g, ea[j], eb[j])
		if static[j] != wantS || values[j] != wantV {
			t.Fatalf("lane %d: PeekBitsWarp = (%#x, %#x), scalar = (%#x, %#x)",
				j, static[j], values[j], wantS, wantV)
		}
	}
}

// TestOverlayPeekMatchesPeekPredictor pins OverlayPeek to the
// peekPredictor composition formula.
func TestOverlayPeekMatchesPeekPredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		dyn, dynStatic := rng.Uint64()&0x7f, rng.Uint64()&0x7f
		pkS, pkV := rng.Uint64()&0x7f, rng.Uint64()&0x7f
		pkV &= pkS // values only exist on resolved boundaries
		carries, static := []uint64{dyn}, []uint64{dynStatic}
		OverlayPeek(carries, static, []uint64{pkS}, []uint64{pkV})
		wantC := (dyn &^ pkS) | pkV
		wantS := dynStatic | pkS
		if carries[0] != wantC || static[0] != wantS {
			t.Fatalf("OverlayPeek = (%#x, %#x), want (%#x, %#x)", carries[0], static[0], wantC, wantS)
		}
	}
}

// TestSplitPeek checks the wrapper strip and the pass-through case.
func TestSplitPeek(t *testing.T) {
	g := Geometry{Width: 64, SliceBits: 8}
	h, err := NewHistory(HistoryConfig{Geometry: g, PCMode: ModPC, PCBits: 4, Threads: ByLtid})
	if err != nil {
		t.Fatal(err)
	}
	inner, peeked := SplitPeek(WithPeek(g, h))
	if !peeked || inner != Predictor(h) {
		t.Fatalf("SplitPeek(WithPeek(h)) = (%v, %v), want (h, true)", inner, peeked)
	}
	same, peeked := SplitPeek(h)
	if peeked || same != Predictor(h) {
		t.Fatalf("SplitPeek(h) = (%v, %v), want (h, false)", same, peeked)
	}
}

// TestJudgeMissWarpMatchesScalar checks the branchless warp judge (both
// the dense full-warp path and the sparse mask walk) against a direct
// per-lane reference.
func TestJudgeMissWarpMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 2000; trial++ {
		active := rng.Uint32()
		if trial%4 == 0 {
			active = ^uint32(0) // exercise the dense path
		}
		if active == 0 {
			active = 1
		}
		mask := bitmath.Mask(uint(1 + rng.Intn(7)))
		n := bits.OnesCount32(active)
		carries, static, actual := make([]uint64, n), make([]uint64, n), make([]uint64, n)
		for j := 0; j < n; j++ {
			carries[j] = rng.Uint64() & mask
			static[j] = rng.Uint64() & mask
			actual[j] = rng.Uint64() & mask
		}
		var wantMispred uint32
		var wantMissed uint64
		j := 0
		for m := active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			if (carries[j]^actual[j])&mask&^static[j] != 0 {
				wantMispred |= 1 << l
				wantMissed++
			}
			j++
		}
		mispred, missed := JudgeMissWarp(active, mask, carries, static, actual)
		if mispred != wantMispred || missed != wantMissed {
			t.Fatalf("JudgeMissWarp(active=%#x) = (%#x, %d), want (%#x, %d)",
				active, mispred, missed, wantMispred, wantMissed)
		}
	}
}

// TestJudgeCorrWarpMatchesScalar checks the matched-boundary counter.
func TestJudgeCorrWarpMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		nb := uint(1 + rng.Intn(7))
		mask := bitmath.Mask(nb)
		n := 1 + rng.Intn(32)
		carries, actual := make([]uint64, n), make([]uint64, n)
		var want uint64
		for j := 0; j < n; j++ {
			carries[j] = rng.Uint64() & mask
			actual[j] = rng.Uint64() & mask
			want += uint64(nb) - uint64(bits.OnesCount64(carries[j]^actual[j]))
		}
		if got := JudgeCorrWarp(nb, mask, carries, actual); got != want {
			t.Fatalf("JudgeCorrWarp = %d, want %d", got, want)
		}
	}
}

// mapOnlyHistory runs a History forced onto the map representation so
// the dense path can be differentially tested against it.
func mapOnlyHistory(t *testing.T, cfg HistoryConfig) *History {
	t.Helper()
	h, err := NewHistory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force the sparse fallback regardless of denseSize / grow mode.
	h.dense, h.written, h.entries = nil, nil, 0
	h.growMode, h.pcBits = false, 0
	h.table = make(map[uint64]uint64)
	return h
}

// TestHistoryDenseMatchesMap drives dense-eligible configurations with
// an identical random request stream through both representations and
// requires identical predictions, entry counts and warp-batch behavior.
func TestHistoryDenseMatchesMap(t *testing.T) {
	g := Geometry{Width: 64, SliceBits: 8}
	cfgs := []HistoryConfig{
		{Geometry: g, PCMode: NoPC, Threads: SharedThreads},
		{Geometry: g, PCMode: NoPC, Threads: ByLtid},
		{Geometry: g, PCMode: ModPC, PCBits: 4, Threads: ByLtid},
		{Geometry: g, PCMode: ModPC, PCBits: 8, Threads: SharedThreads},
		{Geometry: g, PCMode: XorPC, PCBits: 6, Threads: ByLtid, AlwaysUpdate: true},
		// Grow-on-demand gtid-major tables (ByGtid, bounded PC space).
		{Geometry: g, PCMode: NoPC, Threads: ByGtid},
		{Geometry: g, PCMode: ModPC, PCBits: 4, Threads: ByGtid},
		{Geometry: g, PCMode: XorPC, PCBits: 5, Threads: ByGtid, AlwaysUpdate: true},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.Name(), func(t *testing.T) {
			dense, err := NewHistory(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if dense.dense == nil && !dense.growMode {
				t.Fatalf("config %v did not get a flat-table representation", cfg)
			}
			sparse := mapOnlyHistory(t, cfg)
			rng := rand.New(rand.NewSource(12))
			for i := 0; i < 5000; i++ {
				gtid := rng.Uint32() & 0x3ff
				if i%7 == 0 {
					// Full-range ids exercise the grow-table overflow spill.
					gtid = rng.Uint32()
				}
				ctx := Context{
					PC:   rng.Uint32() & 0xffff,
					Gtid: gtid,
					Ltid: uint8(rng.Intn(32)),
					EA:   rng.Uint64(), EB: rng.Uint64(),
					Cin0: uint(rng.Intn(2)),
				}
				pd, ps := dense.Predict(ctx), sparse.Predict(ctx)
				if pd != ps {
					t.Fatalf("op %d: dense Predict %+v, map Predict %+v", i, pd, ps)
				}
				actual := rng.Uint64()
				mis := rng.Intn(3) != 0
				dense.Update(ctx, actual, mis)
				sparse.Update(ctx, actual, mis)
				if dense.Entries() != sparse.Entries() {
					t.Fatalf("op %d: dense Entries %d, map Entries %d", i, dense.Entries(), sparse.Entries())
				}
			}
			dense.Reset()
			if dense.Entries() != 0 {
				t.Fatalf("Entries after Reset = %d", dense.Entries())
			}
			if dense.Predict(Context{}).Carries != 0 {
				t.Fatal("post-Reset prediction not cold")
			}
		})
	}
}
