package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/single-sample cases should be 0")
	}
}

func TestMeanCI95(t *testing.T) {
	if _, _, err := MeanCI95(nil); err == nil {
		t.Error("want error for empty input")
	}
	m, hw, err := MeanCI95([]float64{3})
	if err != nil || m != 3 || hw != 0 {
		t.Errorf("single sample: m=%g hw=%g err=%v", m, hw, err)
	}
	xs := make([]float64, 400)
	rng := rand.New(rand.NewSource(9))
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	m, hw, err = MeanCI95(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m, 10, 0.3) {
		t.Errorf("mean = %g, want ≈10", m)
	}
	// hw ≈ 1.96/sqrt(400) ≈ 0.098
	if hw < 0.05 || hw > 0.15 {
		t.Errorf("CI half width = %g, want ≈0.098", hw)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("perfect correlation: r=%g err=%v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation: r=%g", r)
	}
	if _, err := Pearson(xs, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Error("constant series should error")
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMeanAbsRelError(t *testing.T) {
	got, err := MeanAbsRelError([]float64{110, 90}, []float64{100, 100})
	if err != nil || !almost(got, 0.10, 1e-12) {
		t.Errorf("MARE = %g err=%v, want 0.10", got, err)
	}
	// zero actuals skipped
	got, err = MeanAbsRelError([]float64{5, 110}, []float64{0, 100})
	if err != nil || !almost(got, 0.10, 1e-12) {
		t.Errorf("MARE with zero actual = %g err=%v", got, err)
	}
	if _, err := MeanAbsRelError([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero actuals should error")
	}
}

func TestRate(t *testing.T) {
	var r Rate
	r.AddBool(true)
	r.AddBool(false)
	r.Add(3, 8)
	if r.Hits != 4 || r.Total != 10 {
		t.Fatalf("rate counts %d/%d", r.Hits, r.Total)
	}
	if !almost(r.Value(), 0.4, 1e-12) {
		t.Errorf("rate = %g", r.Value())
	}
	var o Rate
	o.Add(6, 10)
	r.Merge(o)
	if !almost(r.Value(), 0.5, 1e-12) {
		t.Errorf("merged rate = %g", r.Value())
	}
	if (Rate{}).Value() != 0 {
		t.Error("empty rate should be 0")
	}
	if s := (Rate{Hits: 1, Total: 4}).String(); s != "25.00% (1/4)" {
		t.Errorf("String = %q", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(7)
	for _, v := range []int{0, 1, 1, 2, 7, 9, -3} {
		h.Observe(v) // 9 clamps to 7, -3 clamps to 0
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[7] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Max() != 7 {
		t.Errorf("max = %d", h.Max())
	}
	want := (0.0*2 + 1*2 + 2 + 7*2) / 7
	if !almost(h.Mean(), want, 1e-12) {
		t.Errorf("mean = %g, want %g", h.Mean(), want)
	}
	o := NewHistogram(7)
	o.Observe(3)
	if err := h.Merge(o); err != nil || h.Counts[3] != 1 {
		t.Errorf("merge failed: %v", err)
	}
	if err := h.Merge(NewHistogram(3)); err == nil {
		t.Error("bin mismatch should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil || !almost(got, c.want, 1e-12) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile should error")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil || !almost(g, 10, 1e-9) {
		t.Errorf("geomean = %g err=%v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("non-positive sample should error")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1  →  x=2, y=1
	x, err := SolveLinear([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 2, 1e-9) || !almost(x[1], 1, 1e-9) {
		t.Errorf("solution = %v", x)
	}
	if _, err := SolveLinear([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); err == nil {
		t.Error("singular matrix should error")
	}
}

// Property: LeastSquares recovers the exact generating coefficients for a
// noiseless overdetermined system.
func TestLeastSquaresRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(5)      // unknowns
		m := n + 5 + r.Intn(20) // observations
		truth := make([]float64, n)
		for i := range truth {
			truth[i] = r.Float64()*4 - 2
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			for j, c := range truth {
				b[i] += a[i][j] * c
			}
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		for j := range truth {
			if !almost(x[j], truth[j], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined should error")
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged should error")
	}
	if _, err := LeastSquares([][]float64{{1}, {1}}, []float64{1}); err == nil {
		t.Error("row/obs mismatch should error")
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// b is best fit by a negative coefficient on column 2; NNLS must clamp
	// it to zero and refit.
	a := [][]float64{
		{1, 1},
		{2, 1},
		{3, 1},
		{4, 1},
	}
	b := []float64{1, 2, 3, 4} // exactly x=[1,0]; add pull toward negative second coord
	b2 := []float64{1.5, 2.2, 2.9, 3.6}
	x, err := NonNegativeLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1, 1e-9) || !almost(x[1], 0, 1e-9) {
		t.Errorf("x = %v, want [1 0]", x)
	}
	x, err = NonNegativeLeastSquares(a, b2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v < 0 {
			t.Errorf("NNLS produced negative coefficient %v", x)
		}
	}
}
