package stats

import (
	"errors"
	"fmt"
	"math"
)

// LeastSquares solves min ‖A·x − b‖₂ via the normal equations
// (AᵀA)x = Aᵀb with Gaussian elimination and partial pivoting. It is the
// solver the power-model calibration uses to recover per-component scale
// factors from micro-benchmark power measurements (Section V-C of the
// paper). rows(A) = len(b) observations, cols(A) = unknowns.
func LeastSquares(a [][]float64, b []float64) ([]float64, error) {
	m := len(a)
	if m == 0 {
		return nil, ErrEmpty
	}
	if m != len(b) {
		return nil, fmt.Errorf("stats: %d rows vs %d observations", m, len(b))
	}
	n := len(a[0])
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("stats: ragged matrix at row %d", i)
		}
	}
	if m < n {
		return nil, fmt.Errorf("stats: underdetermined system (%d obs, %d unknowns)", m, n)
	}

	// Column equilibration: power-model design matrices mix watt-scale
	// constant columns with milliwatt-scale component columns; scaling
	// each column to unit norm keeps the normal equations well
	// conditioned. The solution is rescaled afterwards.
	norms := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for r := 0; r < m; r++ {
			s += a[r][j] * a[r][j]
		}
		norms[j] = math.Sqrt(s)
		if norms[j] == 0 {
			return nil, fmt.Errorf("stats: column %d is identically zero", j)
		}
	}
	scaled := make([][]float64, m)
	for r := 0; r < m; r++ {
		scaled[r] = make([]float64, n)
		for j := 0; j < n; j++ {
			scaled[r][j] = a[r][j] / norms[j]
		}
	}
	a = scaled

	// Form AᵀA (n×n) and Aᵀb (n).
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	atb := make([]float64, n)
	for r := 0; r < m; r++ {
		for i := 0; i < n; i++ {
			ai := a[r][i]
			if ai == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				ata[i][j] += ai * a[r][j]
			}
			atb[i] += ai * b[r]
		}
	}
	x, err := SolveLinear(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("stats: normal equations: %w", err)
	}
	for j := range x {
		x[j] /= norms[j]
	}
	return x, nil
}

// SolveLinear solves the square system M·x = v with Gaussian elimination
// and partial pivoting.
func SolveLinear(m [][]float64, v []float64) ([]float64, error) {
	n := len(m)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(v) != n {
		return nil, fmt.Errorf("stats: %d equations vs %d values", n, len(v))
	}
	// Work on copies; callers keep their matrices.
	aug := make([][]float64, n)
	for i := range aug {
		if len(m[i]) != n {
			return nil, fmt.Errorf("stats: non-square matrix at row %d", i)
		}
		aug[i] = make([]float64, n+1)
		copy(aug[i], m[i])
		aug[i][n] = v[i]
	}

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aug[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(aug[r][col]); abs > best {
				best, pivot = abs, r
			}
		}
		if best < 1e-12 {
			return nil, errors.New("singular (or nearly singular) matrix")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := aug[r][col] / aug[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := aug[i][n]
		for j := i + 1; j < n; j++ {
			s -= aug[i][j] * x[j]
		}
		x[i] = s / aug[i][i]
	}
	return x, nil
}

// NonNegativeLeastSquares solves min ‖A·x − b‖₂ subject to x ≥ 0 using a
// simple active-set scheme: solve unconstrained, clamp the most negative
// coordinate to zero (removing it from the free set), repeat. Power scale
// factors are physically non-negative, so the calibration uses this.
func NonNegativeLeastSquares(a [][]float64, b []float64) ([]float64, error) {
	if len(a) == 0 {
		return nil, ErrEmpty
	}
	n := len(a[0])
	free := make([]bool, n)
	for i := range free {
		free[i] = true
	}
	for iter := 0; iter <= n; iter++ {
		// Build the reduced system over free columns.
		idx := make([]int, 0, n)
		for j, f := range free {
			if f {
				idx = append(idx, j)
			}
		}
		x := make([]float64, n)
		if len(idx) > 0 {
			sub := make([][]float64, len(a))
			for r := range a {
				sub[r] = make([]float64, len(idx))
				for c, j := range idx {
					sub[r][c] = a[r][j]
				}
			}
			xs, err := LeastSquares(sub, b)
			if err != nil {
				return nil, err
			}
			for c, j := range idx {
				x[j] = xs[c]
			}
		}
		// Find the most negative free coordinate.
		worst, worstJ := 0.0, -1
		for _, j := range idx {
			if x[j] < worst {
				worst, worstJ = x[j], j
			}
		}
		if worstJ < 0 {
			return x, nil
		}
		free[worstJ] = false
	}
	return nil, errors.New("stats: NNLS failed to converge")
}
