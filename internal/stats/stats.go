// Package stats provides the statistical helpers used by the ST² power
// model and the experiment harnesses: summary statistics, confidence
// intervals, Pearson correlation, rates, and histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic needs at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when fewer than
// two samples are available).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (normal approximation, 1.96·σ/√n). The paper reports
// its power model error as "10.5% ± 3.8% (95% confidence interval)" — this
// is the statistic that produces such a line.
func MeanCI95(xs []float64) (mean, halfWidth float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	mean = Mean(xs)
	if len(xs) == 1 {
		return mean, 0, nil
	}
	halfWidth = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth, nil
}

// Pearson returns the Pearson correlation coefficient r between xs and ys.
// It errors if the lengths differ, fewer than two points are given, or
// either series is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: constant series has undefined correlation")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MeanAbsRelError returns mean(|pred-actual|/|actual|) as a fraction.
// Points with actual == 0 are skipped; if every point is skipped it errors.
func MeanAbsRelError(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(pred), len(actual))
	}
	var s float64
	var n int
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return s / float64(n), nil
}

// Rate is an event counter that reports hits / total, the shape of every
// misprediction- and match-rate statistic in the paper.
type Rate struct {
	Hits  uint64
	Total uint64
}

// Add records n events of which hits were "hits".
func (r *Rate) Add(hits, n uint64) {
	r.Hits += hits
	r.Total += n
}

// AddBool records a single event.
func (r *Rate) AddBool(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns the rate as a fraction in [0,1]; 0 when empty.
func (r Rate) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Merge folds another Rate into r.
func (r *Rate) Merge(o Rate) {
	r.Hits += o.Hits
	r.Total += o.Total
}

// String renders the rate as a percentage.
func (r Rate) String() string {
	return fmt.Sprintf("%.2f%% (%d/%d)", 100*r.Value(), r.Hits, r.Total)
}

// Histogram is a fixed-bin histogram over uint values (e.g. number of
// slices recomputed per misprediction).
type Histogram struct {
	Counts []uint64 // Counts[i] = occurrences of value i; last bin is open-ended
}

// NewHistogram creates a histogram for values 0..maxValue; larger values
// clamp into the last bin.
func NewHistogram(maxValue int) *Histogram {
	return &Histogram{Counts: make([]uint64, maxValue+1)}
}

// Observe records one occurrence of v.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mean returns the mean observed value (open-ended bin counted at its
// lower bound).
func (h *Histogram) Mean() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var s float64
	for v, c := range h.Counts {
		s += float64(v) * float64(c)
	}
	return s / float64(t)
}

// Max returns the largest value observed (bin index of the highest
// non-empty bin).
func (h *Histogram) Max() int {
	for v := len(h.Counts) - 1; v >= 0; v-- {
		if h.Counts[v] > 0 {
			return v
		}
	}
	return 0
}

// Merge folds another histogram with the same bin count into h.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("stats: histogram bin mismatch %d vs %d", len(h.Counts), len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// MergeClamped folds another histogram into h regardless of bin counts:
// observations beyond h's last bin clamp into it, mirroring Observe.
// Used to merge histograms from units with different slice counts into
// one run-level distribution.
func (h *Histogram) MergeClamped(o *Histogram) {
	if o == nil {
		return
	}
	last := len(h.Counts) - 1
	for v, c := range o.Counts {
		if c == 0 {
			continue
		}
		if v > last {
			v = last
		}
		h.Counts[v] += c
	}
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0], nil
	}
	if p >= 100 {
		return s[len(s)-1], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// GeoMean returns the geometric mean of strictly positive samples.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive samples, got %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}
