// Package bitmath provides the bit-level arithmetic primitives that the
// rest of the ST² stack is built on: extracting fixed-width slices from
// 64-bit operands, computing the exact carries that a full-width addition
// produces at arbitrary bit boundaries, and measuring carry-propagation
// chain lengths.
//
// Everything in this package is the *ground truth* against which the
// speculative machinery in internal/adder and internal/speculate is
// validated: a sliced adder is correct exactly when its final result and
// boundary carries match the ones computed here.
package bitmath

import "math/bits"

// MaxWidth is the widest addition the package reasons about, in bits.
const MaxWidth = 64

// Mask returns a mask with the low n bits set. n must be in [0, 64].
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// Slice extracts width bits of x starting at bit lo (inclusive).
// Bits beyond bit 63 read as zero.
func Slice(x uint64, lo, width uint) uint64 {
	if lo >= 64 {
		return 0
	}
	return (x >> lo) & Mask(width)
}

// CarryInto returns the carry that ripples *into* bit position k when
// computing a + b + cin over the full 64-bit range. CarryInto(a, b, cin, 0)
// is cin itself; CarryInto(a, b, cin, 64) is the carry-out of the whole
// 64-bit addition.
func CarryInto(a, b uint64, cin uint, k uint) uint {
	if k == 0 {
		return cin & 1
	}
	if k > 64 {
		k = 64
	}
	m := Mask(k)
	la := a & m
	lb := b & m
	sum, c1 := bits.Add64(la, lb, uint64(cin&1))
	_ = sum
	if k == 64 {
		return uint(c1)
	}
	// For k < 64 the carry out of bit k-1 is bit k of the exact sum
	// la + lb + cin, which cannot overflow 64 bits when k < 64.
	exact := la + lb + uint64(cin&1)
	return uint((exact >> k) & 1)
}

// BoundaryCarries returns the carries entering each slice boundary of an
// addition split into ceil(width/sliceBits) slices. For width=64 and
// sliceBits=8 it returns 7 bits: the carry into bits 8, 16, ..., 56 — the
// signals an ST² predictor must guess. Boundary i of the result corresponds
// to the carry into slice i+1, matching the paper's Cpred[0..6] naming.
func BoundaryCarries(a, b uint64, cin uint, width, sliceBits uint) []uint {
	n := NumSlices(width, sliceBits)
	if n <= 1 {
		return nil
	}
	out := make([]uint, n-1)
	for i := uint(1); i < n; i++ {
		out[i-1] = CarryInto(a, b, cin, i*sliceBits)
	}
	return out
}

// BoundaryCarriesPacked is BoundaryCarries with the result packed into a
// uint64, bit i holding the carry into slice i+1. It allocates nothing and
// is the form used on the simulator fast path.
func BoundaryCarriesPacked(a, b uint64, cin uint, width, sliceBits uint) uint64 {
	n := NumSlices(width, sliceBits)
	var packed uint64
	for i := uint(1); i < n; i++ {
		packed |= uint64(CarryInto(a, b, cin, i*sliceBits)) << (i - 1)
	}
	return packed
}

// NumSlices returns how many sliceBits-wide slices cover width bits
// (the last slice may be partial, as with the 52-bit DPU mantissa on
// 8-bit slices → 7 slices).
func NumSlices(width, sliceBits uint) uint {
	if sliceBits == 0 || width == 0 {
		return 0
	}
	return (width + sliceBits - 1) / sliceBits
}

// CarryChainLength returns the length, in bits, of the longest
// carry-propagation chain triggered when computing a + b + cin over width
// bits: the largest number of consecutive propagate positions traversed by
// a live carry (a generated carry that immediately dies contributes 0).
// It is the quantity VaLHALLA/CASA correlate against operand magnitude.
func CarryChainLength(a, b uint64, cin uint, width uint) uint {
	if width == 0 {
		return 0
	}
	if width > 64 {
		width = 64
	}
	m := Mask(width)
	a &= m
	b &= m
	gen := a & b  // positions that generate a carry
	prop := a ^ b // positions that propagate an incoming carry
	var longest, cur uint
	carry := cin & 1
	var origin int = -1 // bit where the live carry was generated; -1 = none
	if carry == 1 {
		origin = 0 // injected carry behaves as if generated below bit 0
	}
	for i := uint(0); i < width; i++ {
		g := uint((gen >> i) & 1)
		p := uint((prop >> i) & 1)
		if carry == 1 && p == 1 {
			cur = i + 1 - uint(origin)
			if cur > longest {
				longest = cur
			}
		}
		// Next carry state.
		if g == 1 {
			carry = 1
			origin = int(i + 1)
		} else if p == 0 {
			carry = 0
			origin = -1
		}
		// else: propagate, carry and origin unchanged.
	}
	return longest
}

// SliceOperands decomposes a and b into their per-slice operand pairs for a
// width-bit addition with sliceBits-wide slices. Slice i covers bits
// [i*sliceBits, min((i+1)*sliceBits, width)).
func SliceOperands(a, b uint64, width, sliceBits uint) (as, bs []uint64) {
	n := NumSlices(width, sliceBits)
	as = make([]uint64, n)
	bs = make([]uint64, n)
	for i := uint(0); i < n; i++ {
		lo := i * sliceBits
		w := sliceBits
		if lo+w > width {
			w = width - lo
		}
		as[i] = Slice(a, lo, w)
		bs[i] = Slice(b, lo, w)
	}
	return as, bs
}

// SliceWidthAt returns the width in bits of slice i for a width-bit value
// split into sliceBits-wide slices.
func SliceWidthAt(i, width, sliceBits uint) uint {
	lo := i * sliceBits
	if lo >= width {
		return 0
	}
	if lo+sliceBits > width {
		return width - lo
	}
	return sliceBits
}

// AddWithCarry adds the low `width` bits of a and b with carry-in cin and
// returns the width-bit sum plus the carry out of bit width-1.
func AddWithCarry(a, b uint64, cin uint, width uint) (sum uint64, cout uint) {
	if width == 0 {
		return 0, cin & 1
	}
	if width >= 64 {
		s, c := bits.Add64(a, b, uint64(cin&1))
		return s, uint(c)
	}
	m := Mask(width)
	exact := (a & m) + (b & m) + uint64(cin&1)
	return exact & m, uint((exact >> width) & 1)
}

// MSB returns bit (width-1) of x, the "peek" bit the ST² static predictor
// inspects on the previous slice's operands.
func MSB(x uint64, width uint) uint {
	if width == 0 {
		return 0
	}
	return uint((x >> (width - 1)) & 1)
}

// OnesComplement returns ^x truncated to width bits, the operand
// transformation a subtraction applies to its second input.
func OnesComplement(x uint64, width uint) uint64 {
	return (^x) & Mask(width)
}

// SignExtend interprets the low `width` bits of x as a two's-complement
// integer and sign-extends it to 64 bits.
func SignExtend(x uint64, width uint) int64 {
	if width == 0 || width >= 64 {
		return int64(x)
	}
	shift := 64 - width
	return int64(x<<shift) >> shift
}

// PopCount64 reports the number of set bits. Thin wrapper kept so callers
// outside this package do not need math/bits directly.
func PopCount64(x uint64) int { return bits.OnesCount64(x) }

// NonZeroBit returns 1 when x != 0 and 0 otherwise, without a branch —
// the judge primitive of the branchless evaluation kernels.
func NonZeroBit(x uint64) uint64 { return (x | -x) >> 63 }

// GatherMSB8 collects the most-significant bit of each 8-bit byte of x
// into the low 8 bits of the result: output bit k is bit 8k+7 of x. For
// 8-bit slices this turns the per-boundary MSB walk (Peek's agree/both
// tests, 7 shift-and-mask steps for a 64-bit adder) into one mask, one
// multiply and one shift. The multiplier places byte k's MSB at bit
// 49−7k+8k+7 = 56+k; the partial products cannot carry into the top
// byte because each lands on a distinct bit.
func GatherMSB8(x uint64) uint64 {
	return (x & 0x8080808080808080) * 0x0002040810204081 >> 56
}
