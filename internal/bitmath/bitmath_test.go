package bitmath

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		n    uint
		want uint64
	}{
		{0, 0},
		{1, 1},
		{8, 0xFF},
		{16, 0xFFFF},
		{63, 0x7FFFFFFFFFFFFFFF},
		{64, ^uint64(0)},
		{100, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestSlice(t *testing.T) {
	x := uint64(0x0123456789ABCDEF)
	cases := []struct {
		lo, w uint
		want  uint64
	}{
		{0, 8, 0xEF},
		{8, 8, 0xCD},
		{56, 8, 0x01},
		{60, 8, 0x0}, // runs off the top
		{64, 8, 0},
		{0, 64, x},
	}
	for _, c := range cases {
		if got := Slice(x, c.lo, c.w); got != c.want {
			t.Errorf("Slice(%#x, %d, %d) = %#x, want %#x", x, c.lo, c.w, got, c.want)
		}
	}
}

func TestCarryIntoKnownValues(t *testing.T) {
	// 0xFF + 0x01 generates a carry out of bit 7 into bit 8.
	if got := CarryInto(0xFF, 0x01, 0, 8); got != 1 {
		t.Errorf("carry into bit 8 of 0xFF+0x01 = %d, want 1", got)
	}
	// ...but not into bit 16.
	if got := CarryInto(0xFF, 0x01, 0, 16); got != 0 {
		t.Errorf("carry into bit 16 of 0xFF+0x01 = %d, want 0", got)
	}
	// A carry injected at bit 0 through a full propagate chain reaches the top.
	if got := CarryInto(^uint64(0), 0, 1, 64); got != 1 {
		t.Errorf("carry out of ^0+0+1 = %d, want 1", got)
	}
	if got := CarryInto(1, 2, 1, 0); got != 1 {
		t.Errorf("CarryInto k=0 should return cin")
	}
}

func TestCarryIntoMatchesAdd64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		cin := uint(rng.Intn(2))
		_, want := bits.Add64(a, b, uint64(cin))
		if got := CarryInto(a, b, cin, 64); got != uint(want) {
			t.Fatalf("CarryInto(%#x,%#x,%d,64) = %d, want %d", a, b, cin, got, want)
		}
	}
}

// Property: reassembling per-slice additions using the exact boundary
// carries reproduces the full-width sum. This is the foundational identity
// that makes sliced speculative addition possible at all.
func TestBoundaryCarriesReassembleSum(t *testing.T) {
	f := func(a, b uint64, cinRaw bool) bool {
		cin := uint(0)
		if cinRaw {
			cin = 1
		}
		for _, sliceBits := range []uint{4, 8, 16, 32} {
			carries := BoundaryCarries(a, b, cin, 64, sliceBits)
			n := NumSlices(64, sliceBits)
			var sum uint64
			c := cin
			for i := uint(0); i < n; i++ {
				if i > 0 {
					c = carries[i-1]
				}
				lo := i * sliceBits
				sa := Slice(a, lo, sliceBits)
				sb := Slice(b, lo, sliceBits)
				s, _ := AddWithCarry(sa, sb, c, sliceBits)
				sum |= s << lo
			}
			want := a + b + uint64(cin)
			if sum != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBoundaryCarriesPackedAgrees(t *testing.T) {
	f := func(a, b uint64) bool {
		for _, sb := range []uint{8, 16} {
			carries := BoundaryCarries(a, b, 0, 64, sb)
			packed := BoundaryCarriesPacked(a, b, 0, 64, sb)
			for i, c := range carries {
				if uint((packed>>uint(i))&1) != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestNumSlices(t *testing.T) {
	cases := []struct {
		width, sliceBits, want uint
	}{
		{64, 8, 8},
		{24, 8, 3}, // FP32 mantissa
		{52, 8, 7}, // FP64 mantissa
		{64, 16, 4},
		{64, 64, 1},
		{0, 8, 0},
		{8, 0, 0},
		{7, 8, 1},
	}
	for _, c := range cases {
		if got := NumSlices(c.width, c.sliceBits); got != c.want {
			t.Errorf("NumSlices(%d,%d) = %d, want %d", c.width, c.sliceBits, got, c.want)
		}
	}
}

func TestCarryChainLengthKnown(t *testing.T) {
	cases := []struct {
		a, b  uint64
		cin   uint
		width uint
		want  uint
	}{
		{0, 0, 0, 64, 0},           // nothing happens
		{1, 1, 0, 64, 0},           // generate at 0, dies at 1 (no propagate)
		{1, 3, 0, 64, 1},           // generate at 0, propagates through bit 1
		{0xFF, 0x01, 0, 64, 7},     // generate at 0, propagate run of 7
		{^uint64(0), 1, 0, 64, 63}, // propagates to the top
		{^uint64(0), 0, 1, 64, 64}, // injected carry rides the full chain
		{0x8000000000000000, 0x8000000000000000, 0, 64, 0}, // generate at 63, exits
	}
	for _, c := range cases {
		if got := CarryChainLength(c.a, c.b, c.cin, c.width); got != c.want {
			t.Errorf("CarryChainLength(%#x,%#x,%d,%d) = %d, want %d",
				c.a, c.b, c.cin, c.width, got, c.want)
		}
	}
}

func TestCarryChainSmallPositiveShort(t *testing.T) {
	// The paper's core observation: small positive operands yield short
	// chains. Confirm chains for sums of values < 2^8 never exceed 8.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(256))
		b := uint64(rng.Intn(256))
		if got := CarryChainLength(a, b, 0, 64); got > 8 {
			t.Fatalf("small operands %d+%d produced chain %d > 8", a, b, got)
		}
	}
}

func TestSliceOperands(t *testing.T) {
	a := uint64(0x1122334455667788)
	b := uint64(0x99AABBCCDDEEFF00)
	as, bs := SliceOperands(a, b, 64, 8)
	if len(as) != 8 || len(bs) != 8 {
		t.Fatalf("expected 8 slices, got %d/%d", len(as), len(bs))
	}
	if as[0] != 0x88 || as[7] != 0x11 || bs[0] != 0x00 || bs[7] != 0x99 {
		t.Errorf("slice extraction wrong: %x %x", as, bs)
	}
	// Partial top slice: 52-bit split into 8-bit slices → last is 4 bits.
	as52, _ := SliceOperands(^uint64(0), 0, 52, 8)
	if len(as52) != 7 {
		t.Fatalf("52/8 should give 7 slices, got %d", len(as52))
	}
	if as52[6] != 0xF {
		t.Errorf("partial top slice = %#x, want 0xF", as52[6])
	}
}

func TestSliceWidthAt(t *testing.T) {
	if w := SliceWidthAt(6, 52, 8); w != 4 {
		t.Errorf("top slice of 52-bit mantissa should be 4 bits, got %d", w)
	}
	if w := SliceWidthAt(2, 24, 8); w != 8 {
		t.Errorf("slice 2 of 24 bits should be 8 wide, got %d", w)
	}
	if w := SliceWidthAt(3, 24, 8); w != 0 {
		t.Errorf("slice 3 of 24 bits should not exist, got width %d", w)
	}
}

func TestAddWithCarry(t *testing.T) {
	sum, cout := AddWithCarry(0xFF, 0x01, 0, 8)
	if sum != 0 || cout != 1 {
		t.Errorf("0xFF+0x01 (8b) = %#x c=%d, want 0 c=1", sum, cout)
	}
	sum, cout = AddWithCarry(0x7F, 0x00, 1, 8)
	if sum != 0x80 || cout != 0 {
		t.Errorf("0x7F+0+1 (8b) = %#x c=%d, want 0x80 c=0", sum, cout)
	}
	sum, cout = AddWithCarry(^uint64(0), 1, 0, 64)
	if sum != 0 || cout != 1 {
		t.Errorf("full width wrap failed: %#x c=%d", sum, cout)
	}
	_, cout = AddWithCarry(0, 0, 1, 0)
	if cout != 1 {
		t.Errorf("zero-width add should pass carry through")
	}
}

func TestMSB(t *testing.T) {
	if MSB(0x80, 8) != 1 || MSB(0x7F, 8) != 0 {
		t.Error("MSB of 8-bit values wrong")
	}
	if MSB(1, 1) != 1 {
		t.Error("MSB width-1 wrong")
	}
	if MSB(123, 0) != 0 {
		t.Error("MSB width-0 should be 0")
	}
}

func TestOnesComplement(t *testing.T) {
	if got := OnesComplement(0, 8); got != 0xFF {
		t.Errorf("^0 (8b) = %#x", got)
	}
	if got := OnesComplement(0xF0F0, 16); got != 0x0F0F {
		t.Errorf("^0xF0F0 (16b) = %#x", got)
	}
}

// Property: subtraction via ones' complement + carry-in 1 equals native
// subtraction, for all widths the units use.
func TestSubtractionIdentity(t *testing.T) {
	f := func(a, b uint64) bool {
		for _, w := range []uint{8, 24, 32, 52, 64} {
			m := Mask(w)
			diff, _ := AddWithCarry(a&m, OnesComplement(b, w), 1, w)
			if diff != (a-b)&m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestSignExtend(t *testing.T) {
	if got := SignExtend(0xFF, 8); got != -1 {
		t.Errorf("SignExtend(0xFF,8) = %d, want -1", got)
	}
	if got := SignExtend(0x7F, 8); got != 127 {
		t.Errorf("SignExtend(0x7F,8) = %d, want 127", got)
	}
	if got := SignExtend(0x80000000, 32); got != -2147483648 {
		t.Errorf("SignExtend 32-bit = %d", got)
	}
}

// Property: CarryInto is monotone consistent — the carry into bit k is
// exactly bit k of the exact (infinite-precision) sum of the low k bits.
func TestCarryIntoExactSum(t *testing.T) {
	f := func(a, b uint64, k8 uint8) bool {
		k := uint(k8%63) + 1
		exact := (a & Mask(k)) + (b & Mask(k))
		return CarryInto(a, b, 0, k) == uint((exact>>k)&1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: GatherMSB8 equals the naive per-byte MSB walk for all inputs.
func TestGatherMSB8MatchesWalk(t *testing.T) {
	f := func(x uint64) bool {
		var want uint64
		for k := uint(0); k < 8; k++ {
			want |= (x >> (8*k + 7) & 1) << k
		}
		return GatherMSB8(x) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	if got := GatherMSB8(0x8080808080808080); got != 0xFF {
		t.Errorf("GatherMSB8(all MSBs) = %#x, want 0xFF", got)
	}
	if got := GatherMSB8(0x7F7F7F7F7F7F7F7F); got != 0 {
		t.Errorf("GatherMSB8(no MSBs) = %#x, want 0", got)
	}
}

func TestNonZeroBit(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 0x80: 1, 1 << 63: 1, ^uint64(0): 1}
	for x, want := range cases {
		if got := NonZeroBit(x); got != want {
			t.Errorf("NonZeroBit(%#x) = %d, want %d", x, got, want)
		}
	}
}
