package bitmath

import (
	"math/big"
	"testing"
)

// FuzzCarriesAgainstBigInt cross-checks the entire carry machinery
// against an independent oracle: arbitrary-precision addition. Any
// divergence between the packed boundary carries / sliced reassembly and
// big.Int arithmetic is a real bug in the foundation everything else
// stands on.
func FuzzCarriesAgainstBigInt(f *testing.F) {
	f.Add(uint64(0xFF), uint64(0x01), false)
	f.Add(^uint64(0), uint64(1), true)
	f.Add(uint64(0x8080808080808080), uint64(0x8080808080808080), false)
	f.Fuzz(func(t *testing.T, a, b uint64, cinRaw bool) {
		cin := uint(0)
		if cinRaw {
			cin = 1
		}
		exact := new(big.Int).Add(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		exact.Add(exact, big.NewInt(int64(cin)))

		// Full-width sum and carry-out.
		sum, cout := AddWithCarry(a, b, cin, 64)
		wantSum := new(big.Int).And(exact, new(big.Int).SetUint64(^uint64(0))).Uint64()
		if sum != wantSum {
			t.Fatalf("sum %#x vs big.Int %#x", sum, wantSum)
		}
		if (exact.BitLen() > 64) != (cout == 1) {
			t.Fatalf("carry-out %d vs big.Int bitlen %d", cout, exact.BitLen())
		}
		// Each boundary carry is bit k of the truncated exact sum of the
		// low k bits.
		for _, sliceBits := range []uint{4, 8, 16} {
			packed := BoundaryCarriesPacked(a, b, cin, 64, sliceBits)
			n := NumSlices(64, sliceBits)
			for i := uint(1); i < n; i++ {
				k := i * sliceBits
				lowMask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), k), big.NewInt(1))
				lowSum := new(big.Int).Add(
					new(big.Int).And(new(big.Int).SetUint64(a), lowMask),
					new(big.Int).And(new(big.Int).SetUint64(b), lowMask))
				lowSum.Add(lowSum, big.NewInt(int64(cin)))
				want := lowSum.Bit(int(k))
				if uint((packed>>(i-1))&1) != want {
					t.Fatalf("boundary %d (sliceBits %d): got %d want %d",
						i, sliceBits, (packed>>(i-1))&1, want)
				}
			}
		}
	})
}
