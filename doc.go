// Package st2gpu is a from-scratch Go reproduction of "ST² GPU: An
// Energy-Efficient GPU Design with Spatio-Temporal Shared-Thread
// Speculative Adders" (DAC 2021).
//
// The repository contains the paper's contribution — sliced speculative
// adders with history-based, thread-shared carry speculation — together
// with every substrate its evaluation depends on: a SIMT GPU simulator
// executing a PTX-like ISA, the 23-kernel Rodinia/CUDA-SDK/Parboil
// evaluation suite, an analytic circuit-characterization flow, and a
// GPUWattch-style calibrated power model. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results; the
// benchmarks in bench_test.go regenerate every figure and table.
package st2gpu
