// Command st2dse runs the paper's design-space explorations: the
// carry-speculation sweep of Figure 5 and the slice-bitwidth study of
// Section V-B.
//
// The Figure 5 sweep records each kernel's adder-op stream once, decodes
// it once into flat structure-of-arrays form, and evaluates the designs
// over the parallel (kernel × design-batch) grid: each grid cell walks
// its kernel's arrays once, scoring a whole contiguous batch of designs
// per record (-sweep-workers bounds the pool; results are bit-identical
// at any count). -reuse-trace extends that across processes: the first
// run simulates the suite once and saves the recording set; later runs
// decode straight from the file with zero simulation. -store goes one
// step further: the first run saves the decoded form itself as a
// columnar st2gpu.decoded store, and later runs load the flat arrays
// with no varint decoding at all — the decode is paid once, ever.
// -bench times the design-batched sweep against the unbatched
// decode-once grid and the per-design replay baseline (each design
// varint-decoding the stream from scratch), times the store load
// against the decode pass, verifies all strategies stay bit-identical
// at several worker counts, and appends the comparison to a JSON array.
//
// -shards distributes the sweep: the coordinator spawns N worker
// subprocesses (this same binary with -shard-worker), each of which
// opens the -store file and partially loads ONLY the kernel sections
// its cells name, and folds their integer cell counters in the fixed
// suite × design order — rows stay bit-identical to the in-process
// sweep at any (shards × sweep-workers) combination.
//
// Usage:
//
//	st2dse [-scale N] [-sms N] [-sweep-workers N]  # Figure 5 sweep
//	st2dse -reuse-trace suite.st2rec       # record once, decode thereafter
//	st2dse -store suite.decoded            # decode once, load thereafter
//	st2dse -store suite.decoded -shards 4  # distribute over 4 worker processes
//	st2dse -widths                         # slice-width characterization
//	st2dse -bench BENCH_dse.json           # batched vs decode-once vs per-design vs store vs sharded
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"time"

	"st2gpu/internal/experiments"
	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/report"
	"st2gpu/internal/speculate"
	"st2gpu/internal/trace"
)

func main() {
	var (
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 2, "simulated SM count")
		widths   = flag.Bool("widths", false, "run the slice-bitwidth DSE instead of the speculation sweep")
		format   = flag.String("format", "text", "output format: text, csv, markdown, or json")
		sortCol  = flag.Bool("sort", false, "sort the Figure 5 sweep by miss rate instead of paper order")
		progress = flag.Bool("progress", false, "print [i/n] kernel progress lines to stderr")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address")
		reuse    = flag.String("reuse-trace", "", "recording-set file: replay the sweep from it if it exists, else simulate once and save it first")
		store    = flag.String("store", "", "columnar decoded-store file: load the sweep's flat arrays from it if it exists (no simulation, no varint decode), else build it — from -reuse-trace when given, or a fresh simulation — and save it first")
		bench    = flag.String("bench", "", "time the decode-once parallel sweep vs per-design replay, check bit-identity, write JSON here")
		recCap   = flag.Uint64("record-max-bytes", 0, "per-kernel recording byte cap (0 = default 1 GiB)")
		workers  = flag.Int("sweep-workers", 0, "worker pool for the (kernel × design) sweep grid (0 = GOMAXPROCS, 1 = sequential; results identical at any count)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this file")
		shards   = flag.Int("shards", 0, "distribute the sweep over this many worker subprocesses (requires -store; results identical to in-process)")
		shardW   = flag.Bool("shard-worker", false, "serve as a sweep shard worker on stdin/stdout (spawned by -shards; not for interactive use)")
	)
	flag.Parse()

	if *shardW {
		if err := experiments.ServeShardWorker(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	// One process-wide registry: the debug endpoint and the experiment
	// pipeline share it, so /metrics sees sweep-cell histograms accumulate.
	reg := metrics.New()
	if *pprof != "" {
		srv, err := metrics.ServeDebug(*pprof, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "st2dse: serving /debug/pprof, /debug/vars, and /metrics on http://%s\n", srv.Addr())
	}
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.New()
		defer func() {
			if err := tr.WriteChromeTraceFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "st2dse: wrote %d spans to %s\n", tr.Len(), *traceOut)
		}()
	}

	if *widths {
		results, best, err := experiments.SliceWidthDSE()
		if err != nil {
			fatal(err)
		}
		tbl := report.New("Section V-B — slice width characterization",
			"slice bits", "structure", "slices", "supply (V)", "V/Vnom", "adder saving", "predictions/op", "chosen")
		for i, r := range results {
			marker := ""
			if i == best {
				marker = "<=" // paper: 8-bit
			}
			tbl.Add(r.SliceBits, r.Kind.String(), r.NumSlices,
				fmt.Sprintf("%.3f", r.ScaledSupply), fmt.Sprintf("%.2f", r.SupplyRatio),
				report.Pct(r.EnergySaving), r.PredictionsPerOp, marker)
		}
		printTable(tbl, *format)
		return
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.RecordMaxBytes = *recCap
	cfg.SweepWorkers = *workers
	cfg.Metrics = reg
	cfg.Obs = tr
	if *progress {
		cfg.Progress = func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, name)
		}
	}

	if *bench != "" {
		if err := runBench(cfg, *bench); err != nil {
			fatal(err)
		}
		return
	}

	var rows []experiments.Fig5Row
	var err error
	switch {
	case *shards > 0:
		if *store == "" {
			fatal(fmt.Errorf("-shards needs -store: shard workers load their kernel sections from the store file"))
		}
		rows, err = sweepSharded(cfg, *store, *reuse, *shards)
	case *store != "":
		rows, err = sweepUsingStore(cfg, *store, *reuse)
	case *reuse != "":
		rows, err = sweepReusingTrace(cfg, *reuse)
	default:
		rows, err = experiments.Fig5(cfg, nil)
	}
	if err != nil {
		fatal(err)
	}
	tbl := report.New("Figure 5 — carry-speculation design space",
		"design", "avg thread misprediction rate")
	for _, r := range rows {
		tbl.Add(r.Design, report.Pct(r.MissRate))
	}
	if *sortCol {
		tbl.SortBy(1)
	}
	printTable(tbl, *format)
}

// reuseSet loads the recording set from path when it exists; otherwise
// it simulates the suite once and saves the capture there.
func reuseSet(cfg experiments.Config, path string) (*trace.Set, error) {
	set, err := trace.ReadSetFileLimit(path, cfg.RecordMaxBytes)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "st2dse: replaying %d kernels (%d bytes) from %s — no simulation\n",
			len(set.Names()), set.Bytes(), path)
	case os.IsNotExist(err):
		if set, err = experiments.RecordSuite(cfg); err != nil {
			return nil, err
		}
		if err := set.WriteFile(path); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "st2dse: recorded the suite once (%d bytes) to %s; future runs replay it\n",
			set.Bytes(), path)
	default:
		return nil, err
	}
	return set, nil
}

// sweepReusingTrace replays the sweep from path when the recording set
// already exists; otherwise it simulates the suite once, saves the set,
// and replays from the fresh capture.
func sweepReusingTrace(cfg experiments.Config, path string) ([]experiments.Fig5Row, error) {
	set, err := reuseSet(cfg, path)
	if err != nil {
		return nil, err
	}
	return experiments.Fig5FromSet(cfg, set, nil)
}

// sweepUsingStore runs the sweep from the columnar decoded store at
// storePath when it exists — no simulation and no varint decode, just a
// sequential column load. Otherwise it obtains a recording set (from
// reusePath when given, else a fresh simulation), decodes it once, saves
// the decoded form, and sweeps from that.
func sweepUsingStore(cfg experiments.Config, storePath, reusePath string) ([]experiments.Fig5Row, error) {
	dec, err := trace.ReadStoreFileTraced(storePath, cfg.RecordMaxBytes, cfg.SweepWorkers, cfg.Obs)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "st2dse: loaded %d decoded kernels (%d records, %d lanes) from %s — no simulation, no varint decode\n",
			len(dec.Names()), dec.NumOps(), dec.NumLanes(), storePath)
	case os.IsNotExist(err):
		var set *trace.Set
		if reusePath != "" {
			set, err = reuseSet(cfg, reusePath)
		} else {
			set, err = experiments.RecordSuite(cfg)
		}
		if err != nil {
			return nil, err
		}
		if dec, err = trace.DecodeSetTraced(set, cfg.Obs); err != nil {
			return nil, err
		}
		if err := dec.WriteStoreFileTraced(storePath, trace.StoreOptions{}, cfg.Obs); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "st2dse: decoded the suite once and stored it to %s; future runs load the flat arrays directly\n",
			storePath)
	default:
		return nil, err
	}
	return experiments.Fig5FromDecoded(cfg, dec, nil)
}

// ensureStore makes sure the decoded store exists at storePath,
// building it (from reusePath's recording set when given, else a fresh
// simulation) when missing.
func ensureStore(cfg experiments.Config, storePath, reusePath string) error {
	_, err := os.Stat(storePath)
	if err == nil {
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	var set *trace.Set
	if reusePath != "" {
		set, err = reuseSet(cfg, reusePath)
	} else {
		set, err = experiments.RecordSuite(cfg)
	}
	if err != nil {
		return err
	}
	dec, err := trace.DecodeSetTraced(set, cfg.Obs)
	if err != nil {
		return err
	}
	if err := dec.WriteStoreFileTraced(storePath, trace.StoreOptions{}, cfg.Obs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "st2dse: decoded the suite once and stored it to %s; future runs load kernel sections directly\n",
		storePath)
	return nil
}

// sweepSharded distributes the Figure 5 sweep over shard worker
// subprocesses (this same binary re-run with -shard-worker), each
// loading only its assigned kernels' sections from the store. Rows are
// bit-identical to the in-process sweep.
func sweepSharded(cfg experiments.Config, storePath, reusePath string, shards int) ([]experiments.Fig5Row, error) {
	if err := ensureStore(cfg, storePath, reusePath); err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	conns, err := experiments.SpawnWorkers(shards, func() *exec.Cmd {
		return exec.Command(exe, "-shard-worker")
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "st2dse: sweeping over %d shard workers from %s\n", shards, storePath)
	return experiments.Fig5Sharded(cfg, storePath, nil, conns, experiments.ShardOptions{})
}

// benchResult is one BENCH_dse.json entry: wall-clock for the three
// sweep strategies — design-batched (one array walk per kernel scores a
// whole design batch), unbatched decode-once (one walk per design), and
// the per-design replay baseline (each design varint-decoding the
// recorded stream from scratch) — plus the eval throughputs behind the
// trade and the bit-identity verdict. BENCH_dse.json is an append-only
// JSON array of these, newest last.
type benchResult struct {
	Scale             int     `json:"scale"`
	NumSMs            int     `json:"num_sms"`
	Designs           int     `json:"designs"`
	SweepWorkers      int     `json:"sweep_workers"`       // grid pool size the timed sweeps used
	RecordSeconds     float64 `json:"record_seconds"`      // simulate the suite once, recording
	DecodeSeconds     float64 `json:"decode_seconds"`      // the single SoA decode pass
	DecodeOpsPerSec   float64 `json:"decode_ops_per_sec"`  // recorded_ops / decode_seconds
	BatchedSeconds    float64 `json:"batched_seconds"`     // design-batched (kernel × design-batch) grid, post-decode
	DecodeOnceSeconds float64 `json:"decode_once_seconds"` // unbatched (kernel × design) grid, post-decode
	PerDesignSeconds  float64 `json:"per_design_seconds"`  // PR-3 path: one full replay per design
	EvalOps           uint64  `json:"eval_ops"`            // recorded_ops × designs: the work every strategy performs
	BatchedEvalRate   float64 `json:"batched_eval_ops_per_sec"`
	PerDesignEvalRate float64 `json:"per_design_eval_ops_per_sec"`
	Speedup           float64 `json:"speedup"`         // per_design / (decode + decode_once)
	BatchedSpeedup    float64 `json:"batched_speedup"` // per_design / batched: the design-batching win
	Identical         bool    `json:"identical"`       // all strategies agree at every tested worker count
	RecordedBytes     uint64  `json:"recorded_bytes"`  // encoded stream size for the suite
	RecordedOps       uint64  `json:"recorded_ops"`    // warp-add records captured
	StoreBytes        uint64  `json:"store_bytes"`     // columnar decoded-store size
	StoreEncodeSecs   float64 `json:"store_encode_seconds"`
	StoreLoadSecs     float64 `json:"store_load_seconds"`     // load the flat arrays back (no varint decode)
	StoreLoadRate     float64 `json:"store_load_ops_per_sec"` // recorded_ops / store_load_seconds
	StoreSpeedup      float64 `json:"store_load_speedup"`     // decode_seconds / store_load_seconds
	Shards            int     `json:"shards"`                 // worker subprocesses the sharded sweep used
	ShardedSecs       float64 `json:"sharded_seconds"`        // distributed sweep wall-clock (incl. worker spawn + partial loads)
	ShardedEvalRate   float64 `json:"sharded_eval_ops_per_sec"`
	ShardedVsBatched  float64 `json:"sharded_vs_batched"`               // batched_seconds / sharded_seconds (<1 on one box: IPC tax)
	PartialLoadSecs   float64 `json:"store_partial_load_seconds"`       // OpenStore + LoadKernels of one kernel
	PartialLoadRate   float64 `json:"store_partial_load_ops_per_sec"`   // that kernel's records / partial_load_seconds
	PartialSpeedup    float64 `json:"store_partial_load_speedup"`       // store_load_seconds / partial_load_seconds
	HostParallel      int     `json:"host_parallelism"`
}

func runBench(cfg experiments.Config, outPath string) error {
	designs := speculate.DesignSpace

	tRecord := time.Now()
	set, err := experiments.RecordSuite(cfg)
	if err != nil {
		return err
	}
	recordSecs := time.Since(tRecord).Seconds()

	// The shared up-front cost of both decode-once strategies: one SoA
	// decode pass.
	tDecode := time.Now()
	dec, err := trace.DecodeSetTraced(set, cfg.Obs)
	if err != nil {
		return err
	}
	decodeSecs := time.Since(tDecode).Seconds()

	// Design-batched: the (kernel × design-batch) grid, one array walk
	// per cell scoring its whole batch.
	tBatched := time.Now()
	batchedRows, err := experiments.Fig5FromDecoded(cfg, dec, designs)
	if err != nil {
		return err
	}
	batchedSecs := time.Since(tBatched).Seconds()

	// Unbatched decode-once: the pre-batching (kernel × design) grid,
	// one full array walk per design.
	tOnce := time.Now()
	onceRows, err := experiments.Fig5FromDecodedPerDesign(cfg, dec, designs)
	if err != nil {
		return err
	}
	onceSecs := time.Since(tOnce).Seconds()

	// Baseline: the PR-3 sweep shape — every design replays (and
	// varint-decodes) the full recording set from scratch.
	tPer := time.Now()
	perRows, err := experiments.Fig5FromSetPerDesign(cfg, set, designs)
	if err != nil {
		return err
	}
	perSecs := time.Since(tPer).Seconds()

	// The store path: serialize the decoded form once, then time loading
	// it back — the steady-state cost every future sweep pays instead of
	// the varint decode.
	var storeBuf bytes.Buffer
	tEncode := time.Now()
	if _, err := trace.WriteDecodedTraced(&storeBuf, dec, trace.StoreOptions{}, cfg.Obs); err != nil {
		return err
	}
	encodeSecs := time.Since(tEncode).Seconds()
	tLoad := time.Now()
	loaded, err := trace.ReadDecodedTraced(bytes.NewReader(storeBuf.Bytes()), 0, 0, cfg.Obs)
	if err != nil {
		return err
	}
	loadSecs := time.Since(tLoad).Seconds()
	storeRows, err := experiments.Fig5FromDecoded(cfg, loaded, designs)
	if err != nil {
		return err
	}

	// The distributed path needs the store on disk: persist the encoded
	// bytes once and time (a) a selective single-kernel load against the
	// full load above, and (b) the sharded sweep over two real worker
	// subprocesses against the in-process batched sweep.
	storeFile, err := os.CreateTemp("", "st2dse-bench-*.st2dec")
	if err != nil {
		return err
	}
	storePath := storeFile.Name()
	defer os.Remove(storePath)
	if _, err := storeFile.Write(storeBuf.Bytes()); err != nil {
		return err
	}
	if err := storeFile.Close(); err != nil {
		return err
	}

	firstKernel := dec.Names()[0]
	tPartial := time.Now()
	handle, err := trace.OpenStoreTraced(storePath, 0, cfg.Obs)
	if err != nil {
		return err
	}
	partial, err := handle.LoadKernelsTraced([]string{firstKernel}, 0, cfg.Obs)
	if err != nil {
		return err
	}
	partialSecs := time.Since(tPartial).Seconds()
	partialKernel, _ := partial.Kernel(firstKernel)
	fullKernel, _ := dec.Kernel(firstKernel)

	const benchShards = 2
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	tSharded := time.Now()
	conns, err := experiments.SpawnWorkers(benchShards, func() *exec.Cmd {
		return exec.Command(exe, "-shard-worker")
	})
	if err != nil {
		return err
	}
	shardedRows, err := experiments.Fig5Sharded(cfg, storePath, designs, conns, experiments.ShardOptions{})
	if err != nil {
		return err
	}
	shardedSecs := time.Since(tSharded).Seconds()

	// Bit-identity: the timed runs, a sequential run, an oversubscribed
	// run, the store round-trip, the selective load, and the distributed
	// sweep must all deep-equal the per-design baseline.
	identical := reflect.DeepEqual(batchedRows, perRows) && reflect.DeepEqual(onceRows, perRows) &&
		reflect.DeepEqual(dec, loaded) && reflect.DeepEqual(storeRows, perRows) &&
		reflect.DeepEqual(partialKernel, fullKernel) && reflect.DeepEqual(shardedRows, perRows)
	for _, w := range []int{1, 2 * runtime.GOMAXPROCS(0)} {
		c := cfg
		c.SweepWorkers = w
		rows, err := experiments.Fig5FromDecoded(c, dec, designs)
		if err != nil {
			return err
		}
		identical = identical && reflect.DeepEqual(rows, perRows)
	}

	sweepWorkers := cfg.SweepWorkers
	if sweepWorkers <= 0 {
		sweepWorkers = runtime.GOMAXPROCS(0)
	}
	evalOps := set.NumOps() * uint64(len(designs))
	res := benchResult{
		Scale:             cfg.Scale,
		NumSMs:            cfg.NumSMs,
		Designs:           len(designs),
		SweepWorkers:      sweepWorkers,
		RecordSeconds:     recordSecs,
		DecodeSeconds:     decodeSecs,
		BatchedSeconds:    batchedSecs,
		DecodeOnceSeconds: onceSecs,
		PerDesignSeconds:  perSecs,
		EvalOps:           evalOps,
		Identical:         identical,
		RecordedBytes:     set.Bytes(),
		RecordedOps:       set.NumOps(),
		StoreBytes:        uint64(storeBuf.Len()),
		StoreEncodeSecs:   encodeSecs,
		StoreLoadSecs:     loadSecs,
		Shards:            benchShards,
		ShardedSecs:       shardedSecs,
		PartialLoadSecs:   partialSecs,
		HostParallel:      runtime.GOMAXPROCS(0),
	}
	if decodeSecs > 0 {
		res.DecodeOpsPerSec = float64(set.NumOps()) / decodeSecs
	}
	if loadSecs > 0 {
		res.StoreLoadRate = float64(set.NumOps()) / loadSecs
		res.StoreSpeedup = decodeSecs / loadSecs
	}
	if batchedSecs > 0 {
		res.BatchedEvalRate = float64(evalOps) / batchedSecs
		res.BatchedSpeedup = perSecs / batchedSecs
	}
	if perSecs > 0 {
		res.PerDesignEvalRate = float64(evalOps) / perSecs
	}
	if decodeSecs+onceSecs > 0 {
		res.Speedup = perSecs / (decodeSecs + onceSecs)
	}
	if shardedSecs > 0 {
		res.ShardedEvalRate = float64(evalOps) / shardedSecs
		res.ShardedVsBatched = batchedSecs / shardedSecs
	}
	if partialSecs > 0 {
		res.PartialLoadRate = float64(partialKernel.NumRecords()) / partialSecs
		res.PartialSpeedup = loadSecs / partialSecs
	}
	if err := obs.AppendTrend(outPath, res); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "st2dse: bench: batched %.3fs (%.0f eval-ops/s, %.1fx) vs decode-once %.2fs vs per-design replay %.2fs (decode %.3fs, %.0f ops/s), store load %.4fs (%.0f ops/s, %.1fx over decode, %d bytes), partial load %.5fs (%.1fx over full), sharded×%d %.3fs (%.0f eval-ops/s), workers=%d, identical=%v → %s\n",
		batchedSecs, res.BatchedEvalRate, res.BatchedSpeedup, onceSecs, perSecs, decodeSecs, res.DecodeOpsPerSec,
		loadSecs, res.StoreLoadRate, res.StoreSpeedup, storeBuf.Len(), partialSecs, res.PartialSpeedup,
		benchShards, shardedSecs, res.ShardedEvalRate, sweepWorkers, identical, outPath)
	if !identical {
		return fmt.Errorf("st2dse: sweep rows are NOT bit-identical across strategies")
	}
	return nil
}

func printTable(t *report.Table, format string) {
	out, err := t.Render(format)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2dse:", err)
	os.Exit(1)
}
