// Command st2dse runs the paper's design-space explorations: the
// carry-speculation sweep of Figure 5 and the slice-bitwidth study of
// Section V-B.
//
// The Figure 5 sweep records each kernel's adder-op stream once and
// replays every design from it. -reuse-trace extends that across
// processes: the first run simulates the suite once and saves the
// recording set; later runs replay straight from the file with zero
// simulation. -bench times the record-once/replay-many sweep against the
// legacy simulate-per-design baseline, verifies the rates are
// bit-identical, and writes the comparison as JSON.
//
// Usage:
//
//	st2dse [-scale N] [-sms N]             # Figure 5 sweep
//	st2dse -reuse-trace suite.st2rec       # record once, replay thereafter
//	st2dse -widths                         # slice-width characterization
//	st2dse -bench BENCH_dse.json           # replay vs simulate-per-design
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"st2gpu/internal/experiments"
	"st2gpu/internal/metrics"
	"st2gpu/internal/report"
	"st2gpu/internal/speculate"
	"st2gpu/internal/trace"
)

func main() {
	var (
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 2, "simulated SM count")
		widths   = flag.Bool("widths", false, "run the slice-bitwidth DSE instead of the speculation sweep")
		format   = flag.String("format", "text", "output format: text, csv, markdown, or json")
		sortCol  = flag.Bool("sort", false, "sort the Figure 5 sweep by miss rate instead of paper order")
		progress = flag.Bool("progress", false, "print [i/n] kernel progress lines to stderr")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address")
		reuse    = flag.String("reuse-trace", "", "recording-set file: replay the sweep from it if it exists, else simulate once and save it first")
		bench    = flag.String("bench", "", "time record-once/replay-many vs simulate-per-design, check bit-identity, write JSON here")
		recCap   = flag.Uint64("record-max-bytes", 0, "per-kernel recording byte cap (0 = default 1 GiB)")
	)
	flag.Parse()

	if *pprof != "" {
		addr, err := metrics.ServeDebug(*pprof, metrics.New())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "st2dse: serving /debug/pprof and /debug/vars on http://%s\n", addr)
	}

	if *widths {
		results, best, err := experiments.SliceWidthDSE()
		if err != nil {
			fatal(err)
		}
		tbl := report.New("Section V-B — slice width characterization",
			"slice bits", "structure", "slices", "supply (V)", "V/Vnom", "adder saving", "predictions/op", "chosen")
		for i, r := range results {
			marker := ""
			if i == best {
				marker = "<=" // paper: 8-bit
			}
			tbl.Add(r.SliceBits, r.Kind.String(), r.NumSlices,
				fmt.Sprintf("%.3f", r.ScaledSupply), fmt.Sprintf("%.2f", r.SupplyRatio),
				report.Pct(r.EnergySaving), r.PredictionsPerOp, marker)
		}
		printTable(tbl, *format)
		return
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.RecordMaxBytes = *recCap
	if *progress {
		cfg.Progress = func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, name)
		}
	}

	if *bench != "" {
		if err := runBench(cfg, *bench); err != nil {
			fatal(err)
		}
		return
	}

	var rows []experiments.Fig5Row
	var err error
	if *reuse != "" {
		rows, err = sweepReusingTrace(cfg, *reuse)
	} else {
		rows, err = experiments.Fig5(cfg, nil)
	}
	if err != nil {
		fatal(err)
	}
	tbl := report.New("Figure 5 — carry-speculation design space",
		"design", "avg thread misprediction rate")
	for _, r := range rows {
		tbl.Add(r.Design, report.Pct(r.MissRate))
	}
	if *sortCol {
		tbl.SortBy(1)
	}
	printTable(tbl, *format)
}

// sweepReusingTrace replays the sweep from path when the recording set
// already exists; otherwise it simulates the suite once, saves the set,
// and replays from the fresh capture.
func sweepReusingTrace(cfg experiments.Config, path string) ([]experiments.Fig5Row, error) {
	set, err := trace.ReadSetFile(path)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "st2dse: replaying %d kernels (%d bytes) from %s — no simulation\n",
			len(set.Names()), set.Bytes(), path)
	case os.IsNotExist(err):
		if set, err = experiments.RecordSuite(cfg); err != nil {
			return nil, err
		}
		if err := set.WriteFile(path); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "st2dse: recorded the suite once (%d bytes) to %s; future runs replay it\n",
			set.Bytes(), path)
	default:
		return nil, err
	}
	return experiments.Fig5FromSet(cfg, set, nil)
}

// benchResult is the BENCH_dse.json payload: wall-clock for the
// record-once/replay-many sweep vs the simulate-per-design baseline over
// the same designs, plus the bit-identity verdict.
type benchResult struct {
	Scale         int     `json:"scale"`
	NumSMs        int     `json:"num_sms"`
	Designs       int     `json:"designs"`
	ReplaySeconds float64 `json:"replay_seconds"` // simulate once + replay all designs
	LiveSeconds   float64 `json:"live_seconds"`   // sequential live-tracer sim per design
	Speedup       float64 `json:"speedup"`        // live/replay
	Identical     bool    `json:"identical"`      // replayed rates == live rates, bit for bit
	RecordedBytes uint64  `json:"recorded_bytes"` // encoded stream size for the suite
	RecordedOps   uint64  `json:"recorded_ops"`   // warp-add records captured
	HostParallel  int     `json:"host_parallelism"`
}

func runBench(cfg experiments.Config, outPath string) error {
	designs := speculate.DesignSpace

	tReplay := time.Now()
	set, err := experiments.RecordSuite(cfg)
	if err != nil {
		return err
	}
	replayRows, err := experiments.Fig5FromSet(cfg, set, designs)
	if err != nil {
		return err
	}
	replaySecs := time.Since(tReplay).Seconds()

	// Baseline: one full live-tracer (sequential-SM) simulation of the
	// suite per design — what a sweep cost before recordings existed.
	tLive := time.Now()
	liveRows := make([]experiments.Fig5Row, 0, len(designs))
	for _, d := range designs {
		rows, err := experiments.Fig5Live(cfg, []string{d})
		if err != nil {
			return err
		}
		liveRows = append(liveRows, rows...)
	}
	liveSecs := time.Since(tLive).Seconds()

	identical := len(replayRows) == len(liveRows)
	if identical {
		for i := range replayRows {
			if replayRows[i].Design != liveRows[i].Design || replayRows[i].MissRate != liveRows[i].MissRate {
				identical = false
				break
			}
		}
	}

	res := benchResult{
		Scale:         cfg.Scale,
		NumSMs:        cfg.NumSMs,
		Designs:       len(designs),
		ReplaySeconds: replaySecs,
		LiveSeconds:   liveSecs,
		Identical:     identical,
		RecordedBytes: set.Bytes(),
		RecordedOps:   set.NumOps(),
		HostParallel:  runtime.GOMAXPROCS(0),
	}
	if replaySecs > 0 {
		res.Speedup = liveSecs / replaySecs
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "st2dse: bench: replay %.2fs vs live %.2fs (%.2fx), identical=%v → %s\n",
		replaySecs, liveSecs, res.Speedup, identical, outPath)
	if !identical {
		return fmt.Errorf("st2dse: replayed rates are NOT bit-identical to the live-tracer path")
	}
	return nil
}

func printTable(t *report.Table, format string) {
	out, err := t.Render(format)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2dse:", err)
	os.Exit(1)
}
