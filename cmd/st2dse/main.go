// Command st2dse runs the paper's design-space explorations: the
// carry-speculation sweep of Figure 5 and the slice-bitwidth study of
// Section V-B.
//
// Usage:
//
//	st2dse [-scale N] [-sms N]           # Figure 5 sweep
//	st2dse -widths                       # slice-width characterization
package main

import (
	"flag"
	"fmt"
	"os"

	"st2gpu/internal/experiments"
	"st2gpu/internal/metrics"
	"st2gpu/internal/report"
)

func main() {
	var (
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 2, "simulated SM count")
		widths   = flag.Bool("widths", false, "run the slice-bitwidth DSE instead of the speculation sweep")
		format   = flag.String("format", "text", "output format: text, csv, markdown, or json")
		sortCol  = flag.Bool("sort", false, "sort the Figure 5 sweep by miss rate instead of paper order")
		progress = flag.Bool("progress", false, "print [i/n] kernel progress lines to stderr")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address")
	)
	flag.Parse()

	if *pprof != "" {
		addr, err := metrics.ServeDebug(*pprof, metrics.New())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "st2dse: serving /debug/pprof and /debug/vars on http://%s\n", addr)
	}

	if *widths {
		results, best, err := experiments.SliceWidthDSE()
		if err != nil {
			fatal(err)
		}
		tbl := report.New("Section V-B — slice width characterization",
			"slice bits", "structure", "slices", "supply (V)", "V/Vnom", "adder saving", "predictions/op", "chosen")
		for i, r := range results {
			marker := ""
			if i == best {
				marker = "<=" // paper: 8-bit
			}
			tbl.Add(r.SliceBits, r.Kind.String(), r.NumSlices,
				fmt.Sprintf("%.3f", r.ScaledSupply), fmt.Sprintf("%.2f", r.SupplyRatio),
				report.Pct(r.EnergySaving), r.PredictionsPerOp, marker)
		}
		printTable(tbl, *format)
		return
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	if *progress {
		cfg.Progress = func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, name)
		}
	}
	rows, err := experiments.Fig5(cfg, nil)
	if err != nil {
		fatal(err)
	}
	tbl := report.New("Figure 5 — carry-speculation design space",
		"design", "avg thread misprediction rate")
	for _, r := range rows {
		tbl.Add(r.Design, report.Pct(r.MissRate))
	}
	if *sortCol {
		tbl.SortBy(1)
	}
	printTable(tbl, *format)
}

func printTable(t *report.Table, format string) {
	out, err := t.Render(format)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2dse:", err)
	os.Exit(1)
}
