// Command st2asm assembles, disassembles, and runs PTX-lite kernels in
// the textual format (see internal/isa: Program.Text / Parse).
//
// Usage:
//
//	st2asm -dump kernel-name          # print a suite kernel as assembly
//	st2asm -run file.s -grid 4 -block 128 [-mode st2|baseline]
//	st2asm -check file.s              # parse + validate only
package main

import (
	"flag"
	"fmt"
	"os"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
	"st2gpu/internal/kernels"
)

func main() {
	var (
		dump  = flag.String("dump", "", "print the named suite kernel as assembly text")
		run   = flag.String("run", "", "assemble and run the given .s file")
		check = flag.String("check", "", "assemble and validate the given .s file")
		grid  = flag.Int("grid", 1, "grid dimension (blocks) for -run")
		block = flag.Int("block", 128, "block dimension (threads) for -run")
		mode  = flag.String("mode", "st2", "adder mode for -run: st2 or baseline")
		sms   = flag.Int("sms", 2, "simulated SM count for -run")
	)
	flag.Parse()

	switch {
	case *dump != "":
		w, err := kernels.ByName(*dump)
		if err != nil {
			fatal(err)
		}
		spec, err := w.Build(1)
		if err != nil {
			fatal(err)
		}
		fmt.Print(spec.Kernel.Program.Text())

	case *check != "":
		prog, err := parseFile(*check)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: OK — %d instructions, %d registers, %d predicates, %d B shared\n",
			prog.Name, len(prog.Instrs), prog.NumRegs, prog.NumPreds, prog.SharedBytes)

	case *run != "":
		prog, err := parseFile(*run)
		if err != nil {
			fatal(err)
		}
		cfg := gpusim.DefaultConfig()
		cfg.NumSMs = *sms
		if *mode == "baseline" {
			cfg.AdderMode = gpusim.BaselineAdders
		}
		d, err := gpusim.New(cfg)
		if err != nil {
			fatal(err)
		}
		rs, err := d.Launch(&gpusim.Kernel{Program: prog, GridDim: *grid, BlockDim: *block})
		if err != nil {
			fatal(err)
		}
		aluAdd, fpuAdd := rs.AddFraction()
		fmt.Printf("%s: %d cycles, %d thread instructions, %.1f%% adds, %.2f%% mispredicted\n",
			prog.Name, rs.Cycles, rs.TotalThreadInstrs(),
			100*(aluAdd+fpuAdd), 100*rs.MispredictionRate())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseFile(path string) (*isa.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return isa.Parse(string(src))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2asm:", err)
	os.Exit(1)
}
