// Command st2power runs the Section V-C power-model workflow: calibrate
// Equation 1's per-component scale factors on the 123 micro-benchmark
// stressors against the synthetic silicon, then validate on the 23-kernel
// suite.
//
// Usage:
//
//	st2power [-noise sigma] [-seed N] [-scale N] [-sms N]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"st2gpu/internal/experiments"
	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/power"
)

func main() {
	var (
		noise    = flag.Float64("noise", 0.06, "relative measurement noise of the synthetic silicon")
		seed     = flag.Int64("seed", 1, "silicon + simulation seed")
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 2, "simulated SM count")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this file")
	)
	flag.Parse()

	reg := metrics.New()
	if *pprof != "" {
		srv, err := metrics.ServeDebug(*pprof, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "st2power: serving /debug/pprof, /debug/vars, and /metrics on http://%s\n", srv.Addr())
	}
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.New()
		defer func() {
			if err := tr.WriteChromeTraceFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "st2power: wrote %d spans to %s\n", tr.Len(), *traceOut)
		}()
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.Seed = *seed
	cfg.Metrics = reg
	cfg.Obs = tr

	rep, model, err := experiments.PowerValidation(cfg, *noise)
	if err != nil {
		fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintln(tw, "component\tcalibrated scale factor")
	for i, s := range model.Scale {
		fmt.Fprintf(tw, "%s\t%.3f\n", power.Component(i), s)
	}
	fmt.Fprintf(tw, "P_const\t%.4f W\n", model.PConst)
	fmt.Fprintf(tw, "P_idleSM\t%.4f W\n", model.PIdleSM)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "validation (23 kernels)\tMARE %.1f%% ± %.1f%%\t(paper: 10.5%% ± 3.8%%)\n",
		100*rep.MeanAbsRelErr, 100*rep.ErrCI95)
	fmt.Fprintf(tw, "\tPearson r %.2f\t(paper: 0.8)\n", rep.PearsonR)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2power:", err)
	os.Exit(1)
}
