// Command st2sim runs kernels from the evaluation suite on the simulated
// ST² GPU (or the baseline) and reports instruction-mix, misprediction,
// and timing statistics.
//
// Usage:
//
//	st2sim [-kernel name|all] [-mode st2|baseline] [-scale N] [-sms N] [-report mix|mispred|cycles|full]
//	       [-json out.jsonl] [-trace-out run.trace.json] [-bench BENCH_smoke.json] [-progress] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
	"st2gpu/internal/kernels"
	"st2gpu/internal/metrics"
	"st2gpu/internal/metrics/runlog"
	"st2gpu/internal/obs"
)

func main() {
	var (
		kernel   = flag.String("kernel", "all", "kernel name from the suite, or 'all'")
		mode     = flag.String("mode", "st2", "adder microarchitecture: st2 or baseline")
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 2, "simulated SM count")
		report   = flag.String("report", "full", "report: mix, mispred, cycles, or full")
		list     = flag.Bool("list", false, "list available kernels and exit")
		app      = flag.String("app", "", "run a multi-kernel application (mergesort, fwt, bitonic, backprop)")
		jsonPath = flag.String("json", "", "append one JSONL run-manifest event per launch to this file")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this file (load in chrome://tracing or Perfetto)")
		benchOut = flag.String("bench", "", "append a smoke-benchmark summary entry to this JSON trend array (read by st2trend)")
		progress = flag.Bool("progress", false, "print [i/n] kernel progress lines to stderr")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, w := range kernels.Suite() {
			fmt.Printf("%-14s (%s)\n", w.Name, w.Suite)
		}
		for _, w := range kernels.Extras() {
			fmt.Printf("%-14s (%s)\n", w.Name, w.Suite)
		}
		for _, a := range kernels.Apps() {
			fmt.Printf("%-14s (application)\n", a.Name)
		}
		return
	}

	switch *report {
	case "mix", "mispred", "cycles", "full":
	default:
		fatal(fmt.Errorf("unknown -report %q (want mix, mispred, cycles, or full)", *report))
	}

	// The registry is process-wide so the pprof/expvar endpoint sees
	// counts accumulate across launches; manifest events snapshot it
	// after each launch.
	reg := metrics.New()
	if *pprof != "" {
		srv, err := metrics.ServeDebug(*pprof, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "st2sim: serving /debug/pprof, /debug/vars, and /metrics on http://%s\n", srv.Addr())
	}
	// The span tracer feeds the -trace-out timeline and the runlog v2
	// span events only; it never touches RunStats.
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.New()
		defer func() {
			if err := tr.WriteChromeTraceFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "st2sim: wrote %d spans to %s\n", tr.Len(), *traceOut)
		}()
	}
	var lg *runlog.Logger
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		lg = runlog.New(f)
	}

	if *app != "" {
		runApp(*app, *scale, *sms, *mode)
		return
	}

	adderMode := gpusim.ST2Adders
	switch *mode {
	case "st2":
	case "baseline":
		adderMode = gpusim.BaselineAdders
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	var suite []kernels.Workload
	if *kernel == "all" {
		suite = kernels.Suite()
	} else if w, err := kernels.ByName(*kernel); err == nil {
		suite = []kernels.Workload{w}
	} else {
		found := false
		for _, w := range kernels.Extras() {
			if w.Name == *kernel {
				suite = []kernels.Workload{w}
				found = true
				break
			}
		}
		if !found {
			fatal(err)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	switch *report {
	case "mix":
		fmt.Fprintln(tw, "kernel\tALU.add\tFPU.add\tALU.other\tFPU.other\tother")
	case "mispred":
		fmt.Fprintln(tw, "kernel\tthread ops\tmispredicts\trate\trecompute(avg)\tCRF conflicts")
	case "cycles":
		fmt.Fprintln(tw, "kernel\tcycles\twarp instrs\tthread instrs\tIPC/SM\tSIMD eff")
	default:
		fmt.Fprintln(tw, "kernel\tmode\tcycles\tthread instrs\tadd frac\tmispred\tL1 hit\tDRAM tx")
	}

	var smoke smokeResult
	smoke.Scale = *scale
	smoke.NumSMs = *sms
	smoke.HostParallel = runtime.GOMAXPROCS(0)
	tSuite := time.Now()
	var mispredOps, mispredMis uint64
	for i, w := range suite {
		spec, err := w.Build(*scale)
		if err != nil {
			fatal(err)
		}
		cfg := gpusim.DefaultConfig()
		cfg.NumSMs = *sms
		cfg.AdderMode = adderMode
		d, err := gpusim.New(cfg)
		if err != nil {
			fatal(err)
		}
		d.SetMetrics(reg)
		d.SetObs(tr)
		if spec.Setup != nil {
			if err := spec.Setup(d.Memory()); err != nil {
				fatal(err)
			}
		}
		rs, err := d.Launch(spec.Kernel)
		if err != nil {
			fatal(err)
		}
		tVerify := time.Now()
		if spec.Verify != nil {
			if err := spec.Verify(d.Memory()); err != nil {
				fatal(fmt.Errorf("%s: output verification failed: %w", w.Name, err))
			}
		}
		ph := d.LaunchTimings()
		if lg != nil {
			if ph.Verify = time.Since(tVerify); ph.Verify <= 0 {
				ph.Verify = time.Nanosecond
			}
			if err := lg.LogRun(*scale, cfg, rs, ph, reg); err != nil {
				fatal(fmt.Errorf("%s: manifest: %w", w.Name, err))
			}
		}
		smoke.Kernels++
		smoke.SimulateSeconds += ph.Simulate.Seconds()
		smoke.TotalThreadInstrs += rs.TotalThreadInstrs()
		smoke.TotalCycles += rs.Cycles
		// Canonical kind order keeps the aggregate fold deterministic.
		for _, kind := range core.UnitKinds {
			mispredOps += rs.Units[kind].ThreadOps
			mispredMis += rs.Units[kind].ThreadMispredicts
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", i+1, len(suite), w.Name)
		}
		printRow(tw, *report, w.Name, rs)
	}
	if lg != nil && tr != nil {
		if err := lg.LogSpans("st2sim", tr); err != nil {
			fatal(fmt.Errorf("manifest spans: %w", err))
		}
	}
	if *benchOut != "" {
		smoke.TotalSeconds = time.Since(tSuite).Seconds()
		if mispredOps > 0 {
			smoke.MispredRate = float64(mispredMis) / float64(mispredOps)
		}
		if err := obs.AppendTrend(*benchOut, smoke); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "st2sim: bench: %d kernels in %.2fs (simulate %.2fs, %d thread instrs, mispred %.2f%%) → %s\n",
			smoke.Kernels, smoke.TotalSeconds, smoke.SimulateSeconds,
			smoke.TotalThreadInstrs, 100*smoke.MispredRate, *benchOut)
	}
}

// smokeResult is one BENCH_smoke.json entry: a whole-suite timing and
// sanity summary. BENCH_smoke.json is an append-only JSON trend array of
// these, newest last (st2trend gates regressions on it).
type smokeResult struct {
	Scale             int     `json:"scale"`
	NumSMs            int     `json:"num_sms"`
	Kernels           int     `json:"kernels"`
	TotalSeconds      float64 `json:"total_seconds"`
	SimulateSeconds   float64 `json:"simulate_seconds"`
	TotalThreadInstrs uint64  `json:"total_thread_instrs"`
	TotalCycles       uint64  `json:"total_cycles"`
	MispredRate       float64 `json:"mispred_rate"`
	HostParallel      int     `json:"host_parallelism"`
}

func printRow(tw *tabwriter.Writer, report, name string, rs *gpusim.RunStats) {
	tot := float64(rs.TotalThreadInstrs())
	switch report {
	case "mix":
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n", name,
			pct(rs.ThreadInstrs[isa.FUAluAdd], tot),
			pct(rs.ThreadInstrs[isa.FUFpAdd], tot),
			pct(rs.ThreadInstrs[isa.FUAluOther]+rs.ThreadInstrs[isa.FUIntMul]+rs.ThreadInstrs[isa.FUIntDiv], tot),
			pct(rs.ThreadInstrs[isa.FUFpMul]+rs.ThreadInstrs[isa.FUFpDiv]+rs.ThreadInstrs[isa.FUSfu], tot),
			pct(rs.ThreadInstrs[isa.FUMem]+rs.ThreadInstrs[isa.FUCtrl], tot))
	case "mispred":
		var ops, mis uint64
		var recompN, recompSum float64
		// Canonical kind order keeps the float fold independent of map
		// iteration order.
		for _, kind := range core.UnitKinds {
			u := rs.Units[kind]
			ops += u.ThreadOps
			mis += u.ThreadMispredicts
			if u.RecomputeHistogram != nil && u.RecomputeHistogram.Total() > 0 {
				recompSum += u.RecomputeHistogram.Mean() * float64(u.RecomputeHistogram.Total())
				recompN += float64(u.RecomputeHistogram.Total())
			}
		}
		mean := 0.0
		if recompN > 0 {
			mean = recompSum / recompN
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f%%\t%.2f\t%d\n",
			name, ops, mis, 100*rs.MispredictionRate(), mean, rs.CRF.Conflicts)
	case "cycles":
		var warpInstrs uint64
		for _, v := range rs.WarpInstrs {
			warpInstrs += v
		}
		ipc := float64(warpInstrs) / float64(rs.Cycles) / float64(rs.SMsUsed)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%.1f%%\n",
			name, rs.Cycles, warpInstrs, uint64(tot), ipc, 100*rs.SIMDEfficiency())
	default:
		aluAdd, fpuAdd := rs.AddFraction()
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%.1f%%\t%.2f%%\t%.1f%%\t%d\n",
			name, rs.Mode, rs.Cycles, uint64(tot),
			100*(aluAdd+fpuAdd), 100*rs.MispredictionRate(),
			100*rs.L1.HitRate(), rs.DRAMAccesses)
	}
}

// runApp executes a multi-kernel application and prints per-launch stats.
func runApp(name string, scale, sms int, mode string) {
	for _, a := range kernels.Apps() {
		if a.Name != name {
			continue
		}
		application, err := a.Build(scale)
		if err != nil {
			fatal(err)
		}
		cfg := gpusim.DefaultConfig()
		cfg.NumSMs = sms
		if mode == "baseline" {
			cfg.AdderMode = gpusim.BaselineAdders
		}
		stats, err := application.Run(cfg)
		if err != nil {
			fatal(err)
		}
		var cycles, instrs uint64
		for i, rs := range stats {
			fmt.Printf("%-18s %10d cycles %10d thread instrs  mispred %.2f%%\n",
				application.Launches[i].Name, rs.Cycles, rs.TotalThreadInstrs(),
				100*rs.MispredictionRate())
			cycles += rs.Cycles
			instrs += rs.TotalThreadInstrs()
		}
		fmt.Printf("%-18s %10d cycles %10d thread instrs  (verified)\n", "total", cycles, instrs)
		return
	}
	fatal(fmt.Errorf("unknown application %q", name))
}

func pct(n uint64, tot float64) float64 {
	if tot == 0 {
		return 0
	}
	return 100 * float64(n) / tot
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2sim:", err)
	os.Exit(1)
}
