package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"st2gpu/internal/obs"
)

func writeTrend(t *testing.T, entries ...any) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	for _, e := range entries {
		if err := obs.AppendTrend(path, e); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

type benchEntry struct {
	Rate      float64 `json:"batched_eval_ops_per_sec"`
	Seconds   float64 `json:"total_seconds"`
	Identical bool    `json:"identical"`
}

func TestParseGate(t *testing.T) {
	for _, bad := range []string{"", "x", "x:up:1", "x:higher:0", "x:higher:-1", "x:higher:abc", "x:maybe"} {
		if _, err := parseGate(bad); err == nil {
			t.Errorf("parseGate(%q) accepted", bad)
		}
	}
	g, err := parseGate("rate:higher:0.25")
	if err != nil || g.field != "rate" || g.mode != "higher" || g.ratio != 0.25 {
		t.Errorf("parseGate = %+v, %v", g, err)
	}
	g, err = parseGate("identical:true")
	if err != nil || g.mode != "bool" || !g.want {
		t.Errorf("parseGate bool = %+v, %v", g, err)
	}
}

// TestGateFailsOnSyntheticRegression is the acceptance fixture: a trend
// history whose newest entry drops below the threshold must fail the
// gate, and a healthy history must pass.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	regressed := writeTrend(t,
		benchEntry{Rate: 100e6, Seconds: 1.0, Identical: true},
		benchEntry{Rate: 120e6, Seconds: 1.1, Identical: true},
		benchEntry{Rate: 10e6, Seconds: 1.0, Identical: true}, // 12× throughput drop
	)
	tf, err := loadFile(regressed)
	if err != nil {
		t.Fatal(err)
	}
	files := []*trendFile{tf}

	g, _ := parseGate("batched_eval_ops_per_sec:higher:0.25")
	if err := checkGate(g, files); err == nil {
		t.Error("12× throughput regression passed the higher:0.25 gate")
	} else if !strings.Contains(err.Error(), "FAILED") {
		t.Errorf("unhelpful gate error: %v", err)
	}

	// Time regression via the lower gate.
	slow := writeTrend(t,
		benchEntry{Rate: 1, Seconds: 1.0, Identical: true},
		benchEntry{Rate: 1, Seconds: 30.0, Identical: true},
	)
	stf, err := loadFile(slow)
	if err != nil {
		t.Fatal(err)
	}
	g, _ = parseGate("total_seconds:lower:5.0")
	if err := checkGate(g, []*trendFile{stf}); err == nil {
		t.Error("30× time regression passed the lower:5.0 gate")
	}

	// Bool regression.
	broken := writeTrend(t,
		benchEntry{Rate: 1, Seconds: 1, Identical: true},
		benchEntry{Rate: 1, Seconds: 1, Identical: false},
	)
	btf, err := loadFile(broken)
	if err != nil {
		t.Fatal(err)
	}
	g, _ = parseGate("identical:true")
	if err := checkGate(g, []*trendFile{btf}); err == nil {
		t.Error("identical=false passed the identical:true gate")
	}
}

func TestGatePassesHealthyHistory(t *testing.T) {
	healthy := writeTrend(t,
		benchEntry{Rate: 100e6, Seconds: 1.2, Identical: true},
		benchEntry{Rate: 95e6, Seconds: 1.3, Identical: true},
		benchEntry{Rate: 110e6, Seconds: 1.1, Identical: true},
	)
	tf, err := loadFile(healthy)
	if err != nil {
		t.Fatal(err)
	}
	files := []*trendFile{tf}
	for _, spec := range []string{
		"batched_eval_ops_per_sec:higher:0.25",
		"total_seconds:lower:5.0",
		"identical:true",
	} {
		g, err := parseGate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkGate(g, files); err != nil {
			t.Errorf("healthy history failed %s: %v", spec, err)
		}
	}

	// Single-entry histories pass ratio gates but still enforce bools.
	single := writeTrend(t, benchEntry{Rate: 1, Seconds: 1, Identical: false})
	stf, err := loadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := parseGate("batched_eval_ops_per_sec:higher:0.25")
	if err := checkGate(g, []*trendFile{stf}); err != nil {
		t.Errorf("single-entry history failed a ratio gate: %v", err)
	}
	g, _ = parseGate("identical:true")
	if err := checkGate(g, []*trendFile{stf}); err == nil {
		t.Error("single-entry identical=false passed the bool gate")
	}

	// A gate whose field exists nowhere is an error, not a silent pass.
	g, _ = parseGate("no_such_field:higher:0.5")
	if err := checkGate(g, files); err == nil {
		t.Error("gate on a missing field passed silently")
	}
}

func TestLoadRunlogManifest(t *testing.T) {
	// Two run lines (one v1-style without type) and one span line.
	manifest := `{"schema":"st2gpu.runlog/v1","seq":0,"kernel":"k1","mode":"st2","config":{},"host":{},"version":"x","phases":{"simulate_s":0.5,"total_s":0.6},"stats":{"cycles":100,"total_thread_instrs":640,"mispred_rate":0.1,"crf":{},"l1":{},"l2":{}}}
{"schema":"st2gpu.runlog/v2","type":"run","seq":1,"kernel":"k2","mode":"st2","config":{},"host":{},"version":"x","phases":{"simulate_s":0.4,"total_s":0.5},"stats":{"cycles":90,"total_thread_instrs":600,"mispred_rate":0.05,"crf":{},"l1":{},"l2":{}}}
{"schema":"st2gpu.runlog/v2","type":"spans","seq":2,"label":"launch/k2","host":{},"version":"x","spans":[{"id":1,"name":"gpusim.launch","start_us":0,"dur_us":10}]}
`
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	tf, err := loadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.runs) != 2 || tf.spans != 1 {
		t.Fatalf("parsed %d runs, %d span lines; want 2, 1", len(tf.runs), tf.spans)
	}
	if tf.runs[0].Kernel != "k1" || tf.runs[1].Stats.Cycles != 90 {
		t.Errorf("run events parsed wrong: %+v", tf.runs)
	}
	var sb strings.Builder
	tf.printRunlogTable(&sb)
	if !strings.Contains(sb.String(), "k1") || !strings.Contains(sb.String(), "k2") {
		t.Errorf("runlog table missing kernels:\n%s", sb.String())
	}

	// Unknown schema rejected.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"schema":"st2gpu.runlog/v99"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFile(bad); err == nil {
		t.Error("unknown schema accepted")
	}
}
