// Command st2trend reads the repo's append-only benchmark trend arrays
// (BENCH_dse.json, BENCH_smoke.json) and runlog JSONL manifests, prints
// per-metric trend tables, and enforces regression gates: with -gate
// specs the newest trend entry is compared against the best prior entry
// and the process exits nonzero on a regression. scripts/trend_gate.sh
// wires it into `make check`.
//
// Usage:
//
//	st2trend [-gate field:higher:RATIO]... FILE...
//
// Gate forms:
//
//	field:higher:R  newest must be ≥ R × best (max) prior entry
//	field:lower:R   newest must be ≤ R × best (min) prior entry
//	field:true      newest must be true
//	field:false     newest must be false
//
// Single-entry histories pass ratio gates (nothing to regress from); a
// gate naming a field present in no file is an error.
package main

import (
	"flag"
	"fmt"
	"os"
)

// gateFlags collects repeated -gate options.
type gateFlags []string

func (g *gateFlags) String() string { return fmt.Sprint(*g) }
func (g *gateFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	var specs gateFlags
	flag.Var(&specs, "gate", "regression gate spec (repeatable): field:higher:RATIO, field:lower:RATIO, field:true, field:false")
	quiet := flag.Bool("q", false, "suppress trend tables; print gate results only")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "st2trend: no input files (expected BENCH_*.json trend arrays or runlog manifests)")
		os.Exit(2)
	}

	gates := make([]gate, 0, len(specs))
	for _, spec := range specs {
		g, err := parseGate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		gates = append(gates, g)
	}

	files := make([]*trendFile, 0, flag.NArg())
	for _, path := range flag.Args() {
		tf, err := loadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		files = append(files, tf)
	}

	if !*quiet {
		for _, tf := range files {
			if tf.entries != nil {
				tf.printTrendTable(os.Stdout)
			} else {
				tf.printRunlogTable(os.Stdout)
			}
			fmt.Println()
		}
	}

	failed := false
	for _, g := range gates {
		if err := checkGate(g, files); err != nil {
			fmt.Fprintln(os.Stderr, "st2trend:", err)
			failed = true
		} else {
			fmt.Printf("gate %s ok\n", g.field)
		}
	}
	if failed {
		os.Exit(1)
	}
}
