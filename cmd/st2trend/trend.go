package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"st2gpu/internal/metrics/runlog"
	"st2gpu/internal/obs"
)

// gate is one parsed -gate specification.
type gate struct {
	field string
	// mode is "higher" (last must stay ≥ ratio × best prior), "lower"
	// (last must stay ≤ ratio × best prior), or "bool" (last must equal
	// want).
	mode  string
	ratio float64
	want  bool
}

// parseGate parses "field:higher:0.25", "field:lower:5.0",
// "field:true", or "field:false".
func parseGate(spec string) (gate, error) {
	parts := strings.Split(spec, ":")
	switch {
	case len(parts) == 2 && (parts[1] == "true" || parts[1] == "false"):
		return gate{field: parts[0], mode: "bool", want: parts[1] == "true"}, nil
	case len(parts) == 3 && (parts[1] == "higher" || parts[1] == "lower"):
		ratio, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || ratio <= 0 {
			return gate{}, fmt.Errorf("st2trend: gate %q: ratio must be a positive number", spec)
		}
		return gate{field: parts[0], mode: parts[1], ratio: ratio}, nil
	default:
		return gate{}, fmt.Errorf("st2trend: bad gate %q (want field:higher:RATIO, field:lower:RATIO, field:true, or field:false)", spec)
	}
}

// trendFile is one parsed input: either a BENCH trend array or a runlog
// JSONL manifest.
type trendFile struct {
	path    string
	entries []map[string]any // trend mode: decoded array entries
	runs    []runlog.Event   // runlog mode: run events
	spans   int              // runlog mode: span-line count
}

// loadFile sniffs the format (leading '[' → trend array, else runlog
// JSONL) and parses.
func loadFile(path string) (*trendFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tf := &trendFile{path: path}
	trimmed := strings.TrimSpace(string(buf))
	if trimmed == "" {
		return nil, fmt.Errorf("st2trend: %s is empty", path)
	}
	if !strings.HasPrefix(trimmed, "[") && !strings.HasPrefix(trimmed, "{") {
		return nil, fmt.Errorf("st2trend: %s is neither a trend array nor a JSONL manifest", path)
	}
	if strings.HasPrefix(trimmed, "[") {
		raws, err := obs.ReadTrend(path)
		if err != nil {
			return nil, err
		}
		for i, raw := range raws {
			var entry map[string]any
			if err := json.Unmarshal(raw, &entry); err != nil {
				return nil, fmt.Errorf("st2trend: %s entry %d: %w", path, i, err)
			}
			tf.entries = append(tf.entries, entry)
		}
		if len(tf.entries) == 0 {
			return nil, fmt.Errorf("st2trend: %s has no entries", path)
		}
		return tf, nil
	}
	for i, line := range strings.Split(trimmed, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var head struct {
			Schema string `json:"schema"`
			Type   string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &head); err != nil {
			return nil, fmt.Errorf("st2trend: %s line %d: %w", path, i+1, err)
		}
		if head.Schema != runlog.Schema && head.Schema != runlog.SchemaV1 {
			return nil, fmt.Errorf("st2trend: %s line %d: unknown schema %q", path, i+1, head.Schema)
		}
		// v1 lines have no "type"; treat them as run events.
		if head.Type == runlog.TypeSpans {
			tf.spans++
			continue
		}
		var ev runlog.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("st2trend: %s line %d: %w", path, i+1, err)
		}
		tf.runs = append(tf.runs, ev)
	}
	if len(tf.runs) == 0 && tf.spans == 0 {
		return nil, fmt.Errorf("st2trend: %s has no manifest events", path)
	}
	return tf, nil
}

// numericFields returns the sorted field names of the newest entry that
// hold numbers or bools.
func (tf *trendFile) numericFields() []string {
	last := tf.entries[len(tf.entries)-1]
	var names []string
	for k, v := range last { //st2:det-ok key collection only; names are sorted before use and never touch simulated results
		switch v.(type) {
		case float64, bool:
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// series extracts one field's numeric history (bools as 0/1); entries
// missing the field are skipped.
func (tf *trendFile) series(field string) []float64 {
	var out []float64
	for _, e := range tf.entries {
		switch v := e[field].(type) {
		case float64:
			out = append(out, v)
		case bool:
			if v {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// printTrendTable prints one trend file's per-metric history summary.
func (tf *trendFile) printTrendTable(w io.Writer) {
	fmt.Fprintf(w, "%s (%d entries)\n", tf.path, len(tf.entries))
	fmt.Fprintf(w, "  %-32s %14s %14s %14s %14s\n", "metric", "first", "min", "max", "last")
	for _, field := range tf.numericFields() {
		s := tf.series(field)
		if len(s) == 0 {
			continue
		}
		min, max := s[0], s[0]
		for _, v := range s[1:] {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		fmt.Fprintf(w, "  %-32s %14s %14s %14s %14s\n",
			field, fnum(s[0]), fnum(min), fnum(max), fnum(s[len(s)-1]))
	}
}

// printRunlogTable prints one manifest's per-event summary.
func (tf *trendFile) printRunlogTable(w io.Writer) {
	fmt.Fprintf(w, "%s (%d run events, %d span events)\n", tf.path, len(tf.runs), tf.spans)
	fmt.Fprintf(w, "  %4s %-16s %12s %16s %12s %11s %11s\n",
		"seq", "kernel", "cycles", "thread_instrs", "mispred", "simulate_s", "total_s")
	for _, ev := range tf.runs {
		fmt.Fprintf(w, "  %4d %-16s %12d %16d %12.6f %11.6f %11.6f\n",
			ev.Seq, ev.Kernel, ev.Stats.Cycles, ev.Stats.TotalThreadInstrs,
			ev.Stats.MispredRate, ev.Phases.SimulateS, ev.Phases.TotalS)
	}
}

func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// checkGate evaluates one gate against every file carrying its field.
// The newest entry must not regress against the best prior entry; a
// single-entry history passes (nothing to regress from). Returns an
// error describing the regression, or an error if no file has the field.
func checkGate(g gate, files []*trendFile) error {
	matched := false
	for _, tf := range files {
		if tf.entries == nil {
			continue
		}
		s := tf.series(g.field)
		if len(s) == 0 {
			continue
		}
		matched = true
		last := s[len(s)-1]
		switch g.mode {
		case "bool":
			want := 0.0
			if g.want {
				want = 1.0
			}
			if last != want {
				return fmt.Errorf("gate %s:%v FAILED in %s: newest entry is %v",
					g.field, g.want, tf.path, last == 1)
			}
		case "higher":
			if len(s) < 2 {
				continue
			}
			best := s[0]
			for _, v := range s[1 : len(s)-1] {
				best = math.Max(best, v)
			}
			if last < g.ratio*best {
				return fmt.Errorf("gate %s:higher:%g FAILED in %s: newest %s < %g × best prior %s",
					g.field, g.ratio, tf.path, fnum(last), g.ratio, fnum(best))
			}
		case "lower":
			if len(s) < 2 {
				continue
			}
			best := s[0]
			for _, v := range s[1 : len(s)-1] {
				best = math.Min(best, v)
			}
			if last > g.ratio*best {
				return fmt.Errorf("gate %s:lower:%g FAILED in %s: newest %s > %g × best prior %s",
					g.field, g.ratio, tf.path, fnum(last), g.ratio, fnum(best))
			}
		}
	}
	if !matched {
		return fmt.Errorf("gate field %q not found in any trend file", g.field)
	}
	return nil
}
