// Command st2energy regenerates the paper's Figure 7: the per-kernel
// system-energy breakdown of the baseline GPU and ST² GPU, with the
// system/chip savings summary, plus the Section VI overhead budget.
//
// Usage:
//
//	st2energy [-scale N] [-sms N] [-overheads]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"st2gpu/internal/experiments"
	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/power"
	"st2gpu/internal/report"
)

func main() {
	var (
		scale     = flag.Int("scale", 1, "workload scale factor")
		sms       = flag.Int("sms", 2, "simulated SM count")
		overheads = flag.Bool("overheads", false, "print the Section VI area/power overhead budget and exit")
		format    = flag.String("format", "", "emit the breakdown as csv, markdown, or json instead of the text report")
		progress  = flag.Bool("progress", false, "print [i/n] kernel progress lines to stderr")
		pprof     = flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this file")
	)
	flag.Parse()

	// One process-wide registry shared between the debug endpoint and the
	// experiment pipeline, so /metrics reflects the actual run.
	reg := metrics.New()
	if *pprof != "" {
		srv, err := metrics.ServeDebug(*pprof, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "st2energy: serving /debug/pprof, /debug/vars, and /metrics on http://%s\n", srv.Addr())
	}
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.New()
		defer func() {
			if err := tr.WriteChromeTraceFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "st2energy: wrote %d spans to %s\n", tr.Len(), *traceOut)
		}()
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	if *overheads {
		budget, err := experiments.Overheads(0)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "level shifters\t%d instances\n", budget.Shifters)
		fmt.Fprintf(tw, "shifter area\t%.2f mm² (%.2f%% of chip)\n",
			budget.ShifterAreaMM2, 100*budget.ShifterAreaFraction)
		fmt.Fprintf(tw, "shifter static power\t%.2f W\n", budget.ShifterStaticW)
		fmt.Fprintf(tw, "shifter dynamic power\t%.4f W (worst-case toggle)\n", budget.ShifterDynamicW)
		fmt.Fprintf(tw, "CRF per SM\t%d B\n", budget.CRFBytesPerSM)
		fmt.Fprintf(tw, "CRF chip total\t%.1f kB\n", float64(budget.CRFBytesChip)/1024)
		fmt.Fprintf(tw, "state DFFs chip total\t%.1f kB\n", float64(budget.StateDFFBytesChip)/1024)
		fmt.Fprintf(tw, "total added state\t%.1f kB (%.3f%% of on-chip SRAM)\n",
			float64(budget.TotalSRAMBytes)/1024, 100*budget.SRAMFraction)
		return
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.Metrics = reg
	cfg.Obs = tr
	if *progress {
		cfg.Progress = func(done, total int, name string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, name)
		}
	}
	rows, sum, err := experiments.Fig7(cfg)
	if err != nil {
		fatal(err)
	}

	if *format != "" {
		tbl := report.New("Figure 7 — normalized system energy (baseline vs ST²)",
			"kernel", "config", "ALU+FPU", "int Mul/Div", "fp Mul/Div", "SFU",
			"RegFile", "Caches+MC", "NoC", "Others", "DRAM", "saving")
		for _, r := range rows {
			total := r.Baseline.Total()
			addRow := func(config string, b power.Breakdown, saving string) {
				cells := []any{r.Kernel, config}
				for _, c := range power.Components() {
					cells = append(cells, fmt.Sprintf("%.4f", b[c]/total))
				}
				cells = append(cells, saving)
				tbl.Add(cells...)
			}
			addRow("base", r.Baseline, "")
			addRow("st2", r.ST2, report.Pct(r.SystemSaving))
		}
		out, err := tbl.Render(*format)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	fmt.Fprint(tw, "kernel\tconfig")
	for _, c := range power.Components() {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw, "\tsaving")
	for _, r := range rows {
		printBreakdown(tw, r.Kernel, "base", r.Baseline, r.Baseline, 0)
		printBreakdown(tw, "", "st2", r.ST2, r.Baseline, r.SystemSaving)
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "average system energy saving\t%.1f%%\t(paper: 19%%)\n", 100*sum.AvgSystemSaving)
	fmt.Fprintf(tw, "average chip energy saving\t%.1f%%\t(paper: 21%%)\n", 100*sum.AvgChipSaving)
	fmt.Fprintf(tw, "baseline ALU+FPU system share\t%.1f%%\t(paper: 27%%)\n", 100*sum.AvgALUFPUShare)
	fmt.Fprintf(tw, "baseline ALU+FPU chip share\t%.1f%%\t(paper: 30%%)\n", 100*sum.AvgALUFPUChip)
	fmt.Fprintf(tw, "kernels >20%% ALU+FPU energy\t%d\t(paper: 14)\n", sum.IntenseCount)
	fmt.Fprintf(tw, "their avg system saving\t%.1f%%\t(paper: 26%%)\n", 100*sum.IntenseSystemSaving)
	fmt.Fprintf(tw, "max system saving\t%.1f%% (%s)\t(paper: 40%% msort_K2)\n",
		100*sum.MaxSystemSaving, sum.MaxSystemSavingKernel)
}

// printBreakdown renders one bar of Figure 7, normalized to the kernel's
// baseline total.
func printBreakdown(tw *tabwriter.Writer, kernel, config string, b, norm power.Breakdown, saving float64) {
	fmt.Fprintf(tw, "%s\t%s", kernel, config)
	total := norm.Total()
	for _, c := range power.Components() {
		fmt.Fprintf(tw, "\t%.3f", b[c]/total)
	}
	if config == "st2" {
		fmt.Fprintf(tw, "\t%.1f%%", 100*saving)
	} else {
		fmt.Fprint(tw, "\t")
	}
	fmt.Fprintln(tw)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2energy:", err)
	os.Exit(1)
}
