// Command st2lint statically enforces the simulator's determinism and
// shard-ownership invariants: the bit-identical-at-any-worker-count
// guarantee behind every reproduced paper figure is checked at lint
// time, not just by the runtime identity tests.
//
// Usage:
//
//	st2lint [-run detmaprange,detclock,...] [-json] [-v] ./...
//
// st2lint exits 1 when any finding survives suppression filtering, so
// `make lint` (and `make check`, which runs it before the race-detector
// suite) fails fast on a violation. A finding is suppressed by a
// `//st2:det-ok <reason>` comment on the flagged line or the line
// above; the reason is mandatory (see the detok analyzer).
//
// Analyzers (each documents the invariant it encodes in its Doc):
//
//	detmaprange  no map-order iteration in result-producing paths
//	detclock     no wall-clock/global-rand reads in simulation code
//	shardown     worker goroutines write only worker-owned shards
//	foldorder    cross-shard float folds only in blessed fold helpers
//	detok        suppressions must carry a reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"st2gpu/internal/analysis"
)

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON lines")
		verbose  = flag.Bool("v", false, "print per-analyzer docs and a summary")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: st2lint [-run names] [-json] [-v] packages...\n\n"+
				"Statically enforces determinism and shard-ownership invariants.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := analysis.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *listOnly {
		for _, a := range analyzers {
			doc := a.Doc
			for i, r := range doc {
				if r == '\n' {
					doc = doc[:i]
					break
				}
			}
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "st2lint: running %d analyzers over %v\n", len(analyzers), patterns)
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(wd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		if *jsonOut {
			b, err := json.Marshal(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(string(b))
		} else {
			fmt.Println(d.String())
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "st2lint: %d findings\n", len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
