// Command st2lint statically enforces the simulator's determinism,
// shard-ownership, concurrency-safety, and wire-input-hardening
// invariants: the bit-identical-at-any-worker-count guarantee behind
// every reproduced paper figure — and the decode-validate-then-spawn
// discipline behind every daemon-facing surface — are checked at lint
// time, not just by the runtime identity tests.
//
// Usage:
//
//	st2lint [-run detmaprange,wiretaint,...] [-json|-sarif] [-baseline file]
//	        [-write-baseline file] [-cache dir] [-v] ./...
//
// st2lint exits 1 when any finding survives suppression and baseline
// filtering, so `make lint` (and `make check`, which runs it before the
// race-detector suite) fails fast on a violation. A finding is
// suppressed by a `//st2:det-ok <reason>` (determinism family) or
// `//st2:conc-ok <reason>` (concurrency family) comment on the flagged
// line or the line above; the reason is mandatory, and a reasoned
// suppression that covers no finding is itself flagged as stale (see
// the detok analyzer).
//
// The baseline workflow freezes known findings so new code is held to
// the full standard while legacy findings are burned down deliberately:
// `-write-baseline .st2lint-baseline.json` records today's findings;
// `-baseline .st2lint-baseline.json` filters exactly those (matched by
// analyzer, file, and message — line numbers excluded, so unrelated
// edits don't resurrect them). The repository commits its baseline; it
// is empty, and must stay empty.
//
// Analyzers (each documents the invariant it encodes in its Doc):
//
//	detmaprange  no map-order iteration in result-producing paths
//	detclock     no wall-clock/global-rand reads in simulation code
//	shardown     worker goroutines write only worker-owned shards
//	foldorder    cross-shard float folds only in blessed fold helpers
//	wiretaint    wire-decoded lengths are budget-checked before allocation
//	goleak       every go statement has a statically-visible exit path
//	lockorder    stripe-array locks are acquired in ascending order
//	chandisc     dispatcher channel sends cannot block forever
//	detok        suppressions carry reasons and cover real findings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"st2gpu/internal/analysis"
)

func main() {
	var (
		runList   = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON lines")
		sarifOut  = flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document")
		baseline  = flag.String("baseline", "", "filter findings recorded in this baseline file")
		writeBase = flag.String("write-baseline", "", "write surviving findings to this baseline file and exit 0")
		cacheDir  = flag.String("cache", "", "cache the go-list package load under this directory")
		verbose   = flag.Bool("v", false, "print per-analyzer docs and a summary")
		listOnly  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: st2lint [-run names] [-json|-sarif] [-baseline file] [-cache dir] [-v] packages...\n\n"+
				"Statically enforces determinism, shard-ownership, and concurrency-safety invariants.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := analysis.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *listOnly {
		for _, a := range analyzers {
			doc := a.Doc
			for i, r := range doc {
				if r == '\n' {
					doc = doc[:i]
					break
				}
			}
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "st2lint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "st2lint: running %d analyzers over %v\n", len(analyzers), patterns)
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(wd, patterns, analyzers, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *writeBase != "" {
		if err := writeBaseline(*writeBase, wd, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "st2lint: wrote %d baseline entries to %s\n", len(diags), *writeBase)
		return
	}
	if *baseline != "" {
		diags, err = filterBaseline(*baseline, wd, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	switch {
	case *sarifOut:
		if err := emitSARIF(os.Stdout, wd, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *jsonOut:
		for _, d := range diags {
			b, err := json.Marshal(jsonFinding{
				File:      d.Pos.Filename,
				Line:      d.Pos.Line,
				Col:       d.Pos.Column,
				EndLine:   d.End.Line,
				EndCol:    d.End.Column,
				Analyzer:  d.Analyzer,
				Directive: d.Directive,
				Message:   d.Message,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(string(b))
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "st2lint: %d findings\n", len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the -json line schema. file/line/col/analyzer/message
// are the original fields; endLine/endCol and directive extend the
// schema without renaming anything, so existing consumers keep working.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	EndLine   int    `json:"endLine"`
	EndCol    int    `json:"endCol"`
	Analyzer  string `json:"analyzer"`
	Directive string `json:"directive,omitempty"`
	Message   string `json:"message"`
}

// baselineFile is the committed-baseline schema. Entries match on
// (analyzer, file, message) — deliberately no line numbers, so editing
// an unrelated part of a file neither hides nor resurrects an entry.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []baselineEntry `json:"entries"`
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func baselineKey(wd string, d analysis.Diagnostic) baselineEntry {
	return baselineEntry{Analyzer: d.Analyzer, File: relPath(wd, d.Pos.Filename), Message: d.Message}
}

// relPath makes a diagnostic path repo-relative with forward slashes so
// baselines and SARIF output are machine-independent.
func relPath(wd, file string) string {
	if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

func writeBaseline(path, wd string, diags []analysis.Diagnostic) error {
	bf := baselineFile{Version: 1, Entries: []baselineEntry{}}
	seen := make(map[baselineEntry]bool)
	for _, d := range diags {
		e := baselineKey(wd, d)
		if !seen[e] {
			seen[e] = true
			bf.Entries = append(bf.Entries, e)
		}
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func filterBaseline(path, wd string, diags []analysis.Diagnostic) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("st2lint: reading baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("st2lint: parsing baseline %s: %w", path, err)
	}
	known := make(map[baselineEntry]bool, len(bf.Entries))
	for _, e := range bf.Entries {
		known[e] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !known[baselineKey(wd, d)] {
			kept = append(kept, d)
		}
	}
	return kept, nil
}
