package main

import (
	"encoding/json"
	"io"
	"strings"

	"st2gpu/internal/analysis"
)

// SARIF 2.1.0 output, the subset CI annotators (GitHub code scanning,
// most SARIF viewers) consume: one run, one rule per analyzer, one
// result per finding with a start/end region. Hand-rolled structs keep
// the dependency surface at zero.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// emitSARIF writes the findings as one SARIF run. Paths are
// repo-relative; the region carries the full flagged range when the
// analyzer reported one.
func emitSARIF(w io.Writer, wd string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	ruleIndex := make(map[string]int, len(analyzers))
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		short, _, _ := strings.Cut(a.Doc, "\n")
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: short},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		region := sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
		if d.End.Line > d.Pos.Line || (d.End.Line == d.Pos.Line && d.End.Column > d.Pos.Column) {
			region.EndLine = d.End.Line
			region.EndColumn = d.End.Column
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(wd, d.Pos.Filename)},
					Region:           region,
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "st2lint", Rules: rules}}, Results: results}},
	})
}
