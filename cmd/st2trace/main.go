// Command st2trace regenerates the paper's value/carry correlation
// analyses: the Figure 2 value-evolution dump for pathfinder and the
// Figure 3 carry-in correlation table.
//
// Usage:
//
//	st2trace -report fig2 [-gtid N] [-points N]
//	st2trace -report fig3 [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"st2gpu/internal/experiments"
	"st2gpu/internal/trace"
)

func main() {
	var (
		report = flag.String("report", "fig3", "report: fig2 (value evolution) or fig3 (carry correlation)")
		gtid   = flag.Uint("gtid", 37, "thread to trace for fig2")
		points = flag.Int("points", 30, "points per PC for fig2")
		scale  = flag.Int("scale", 1, "workload scale factor")
		sms    = flag.Int("sms", 2, "simulated SM count")
	)
	flag.Parse()

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	switch *report {
	case "fig2":
		series, err := experiments.Fig2(cfg, uint32(*gtid), *points)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pathfinder thread %d: addition results per PC in logical time\n", *gtid)
		for _, s := range series {
			fmt.Fprintf(tw, "PC%d\t", s.PC)
			for _, p := range s.Points {
				fmt.Fprintf(tw, "%d ", p.Value)
			}
			fmt.Fprintln(tw)
		}
	case "fig3":
		rows, err := experiments.Fig3(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "kernel\t%s\t%s\t%s\n",
			trace.Fig3Designs[0], trace.Fig3Designs[1], trace.Fig3Designs[2])
		for _, r := range rows {
			if r.Samples[0] == 0 && r.Samples[1] == 0 && r.Samples[2] == 0 {
				fmt.Fprintf(tw, "%s\t-\t-\t-\n", r.Kernel)
				continue
			}
			fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\n",
				r.Kernel, 100*r.Rates[0], 100*r.Rates[1], 100*r.Rates[2])
		}
		fmt.Fprintln(tw, "\n(paper's averages: 50% / 83% / 89%)")
	default:
		fatal(fmt.Errorf("unknown -report %q", *report))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2trace:", err)
	os.Exit(1)
}
