// Command st2trace regenerates the paper's value/carry correlation
// analyses: the Figure 2 value-evolution dump for pathfinder and the
// Figure 3 carry-in correlation table.
//
// The adder-op stream behind both reports can be captured once and
// replayed: -record simulates the 23-kernel suite a single time (parallel
// SMs, parallel kernels) and saves the compact recording set; -replay
// answers any report from such a file without re-simulating.
//
// The decode work itself can also be paid once: -store-out decodes the
// suite (recorded fresh, or loaded via -replay) and saves the columnar
// st2gpu.decoded store, which st2dse -store then loads without any
// varint decoding at all.
//
// Usage:
//
//	st2trace -report fig2 [-gtid N] [-points N]
//	st2trace -report fig3 [-scale N]
//	st2trace -record suite.st2rec [-scale N] [-sms N]
//	st2trace -report fig3 -replay suite.st2rec
//	st2trace -replay suite.st2rec -store-out suite.decoded
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"st2gpu/internal/experiments"
	"st2gpu/internal/obs"
	"st2gpu/internal/trace"
)

func main() {
	var (
		report   = flag.String("report", "fig3", "report: fig2 (value evolution) or fig3 (carry correlation)")
		gtid     = flag.Uint("gtid", 37, "thread to trace for fig2")
		points   = flag.Int("points", 30, "points per PC for fig2")
		scale    = flag.Int("scale", 1, "workload scale factor")
		sms      = flag.Int("sms", 2, "simulated SM count")
		record   = flag.String("record", "", "simulate the suite once and save its recording set to this file (no report)")
		replay   = flag.String("replay", "", "answer the report from a recording set saved by -record (no simulation)")
		recCap   = flag.Uint64("record-max-bytes", 0, "per-kernel recording byte cap (0 = default 1 GiB)")
		storeOut = flag.String("store-out", "", "decode the suite once and save the columnar st2gpu.decoded store to this file (no report)")
		storeRaw = flag.Bool("store-compact", false, "omit the derived Sum/Carries columns from -store-out (smaller file, slower loads)")
		workers  = flag.Int("sweep-workers", 0, "worker pool for the fig3 (kernel × scheme) grid (0 = GOMAXPROCS, 1 = sequential; results identical at any count)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this file")
	)
	flag.Parse()

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.RecordMaxBytes = *recCap
	cfg.SweepWorkers = *workers
	if *traceOut != "" {
		cfg.Obs = obs.New()
		defer func() {
			if err := cfg.Obs.WriteChromeTraceFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "st2trace: wrote %d spans to %s\n", cfg.Obs.Len(), *traceOut)
		}()
	}

	var set *trace.Set
	if *replay != "" {
		var err error
		if set, err = trace.ReadSetFileLimit(*replay, cfg.RecordMaxBytes); err != nil {
			fatal(err)
		}
	}

	if *record != "" || *storeOut != "" {
		if set == nil {
			var err error
			if set, err = experiments.RecordSuite(cfg); err != nil {
				fatal(err)
			}
		}
		if *record != "" {
			if err := set.WriteFile(*record); err != nil {
				fatal(err)
			}
			fmt.Printf("st2trace: recorded %d kernels (%d warp-add records, %d bytes) to %s\n",
				len(set.Names()), set.NumOps(), set.Bytes(), *record)
		}
		if *storeOut != "" {
			dec, err := trace.DecodeSetTraced(set, cfg.Obs)
			if err != nil {
				fatal(err)
			}
			if err := dec.WriteStoreFileTraced(*storeOut, trace.StoreOptions{OmitDerived: *storeRaw}, cfg.Obs); err != nil {
				fatal(err)
			}
			st, err := os.Stat(*storeOut)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("st2trace: stored %d decoded kernels (%d records, %d lanes, %d bytes) to %s\n",
				len(dec.Names()), dec.NumOps(), dec.NumLanes(), st.Size(), *storeOut)
		}
		return
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	switch *report {
	case "fig2":
		var series []experiments.Fig2Series
		var err error
		if set != nil {
			series, err = experiments.Fig2FromSet(cfg, set, uint32(*gtid), *points)
		} else {
			series, err = experiments.Fig2(cfg, uint32(*gtid), *points)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pathfinder thread %d: addition results per PC in logical time\n", *gtid)
		for _, s := range series {
			fmt.Fprintf(tw, "PC%d\t", s.PC)
			for _, p := range s.Points {
				fmt.Fprintf(tw, "%d ", p.Value)
			}
			fmt.Fprintln(tw)
		}
	case "fig3":
		var rows []experiments.Fig3Row
		var err error
		if set != nil {
			rows, err = experiments.Fig3FromSet(cfg, set)
		} else {
			rows, err = experiments.Fig3(cfg)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "kernel\t%s\t%s\t%s\n",
			trace.Fig3Designs[0], trace.Fig3Designs[1], trace.Fig3Designs[2])
		for _, r := range rows {
			if r.Samples[0] == 0 && r.Samples[1] == 0 && r.Samples[2] == 0 {
				fmt.Fprintf(tw, "%s\t-\t-\t-\n", r.Kernel)
				continue
			}
			fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\n",
				r.Kernel, 100*r.Rates[0], 100*r.Rates[1], 100*r.Rates[2])
		}
		fmt.Fprintln(tw, "\n(paper's averages: 50% / 83% / 89%)")
	default:
		fatal(fmt.Errorf("unknown -report %q", *report))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2trace:", err)
	os.Exit(1)
}
