// Command st2shard runs the distributed (kernel × design-batch) sweep
// over a columnar decoded store: a coordinator partitions the grid into
// cells and hands them to worker processes over a line-delimited JSON
// protocol; each worker opens the store and loads ONLY the kernel
// sections its cells name (selective section loading), so worker memory
// and load time scale with the assignment, not the suite. Cell results
// are integer counters folded in the fixed suite × design order — rows
// are bit-identical to the in-process st2dse sweep at any
// (shards × sweep-workers) combination, including after a crashed
// worker's cells are requeued.
//
// By default the coordinator spawns -shards local worker subprocesses
// (this same binary with -worker) over stdio. For multi-host sweeps,
// run the coordinator with -listen and one `st2shard -connect` worker
// per host:
//
//	st2shard -store suite.decoded                      # 2 local workers
//	st2shard -store suite.decoded -shards 8            # 8 local workers
//	st2shard -store suite.decoded -fig3                # Figure 3 grid
//	st2shard -store suite.decoded -listen :7070 -shards 3   # wait for 3 TCP workers
//	st2shard -connect coord:7070                       # worker, on each host
//	st2shard -worker                                   # stdio worker (spawned)
//
// Every host needs the store file (or a copy) at the same path passed
// by the coordinator's open message; build it once with
// `st2dse -store suite.decoded` or let this tool build it on first run.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"

	"st2gpu/internal/experiments"
	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/report"
	"st2gpu/internal/trace"
)

func main() {
	var (
		store    = flag.String("store", "", "columnar decoded-store file the workers load kernel sections from; built (one simulation + decode) if missing")
		shards   = flag.Int("shards", 2, "worker count: subprocesses to spawn, or TCP connections to wait for with -listen")
		workerM  = flag.Bool("worker", false, "serve as a shard worker on stdin/stdout (spawned by the coordinator)")
		connect  = flag.String("connect", "", "serve as a shard worker over TCP to this coordinator address")
		listen   = flag.String("listen", "", "coordinate over TCP: accept -shards worker connections on this address instead of spawning subprocesses")
		fig3     = flag.Bool("fig3", false, "run the Figure 3 correlation grid instead of the Figure 5 design sweep")
		scale    = flag.Int("scale", 1, "workload scale factor (must match the store)")
		sms      = flag.Int("sms", 2, "simulated SM count (must match the store)")
		workers  = flag.Int("sweep-workers", 0, "per-worker cell parallelism and inflight cap (0 = GOMAXPROCS; results identical at any count)")
		lease    = flag.Duration("lease", 0, "how long a worker may hold cells without returning results before it is declared hung and its cells requeued (0 = 2m)")
		retries  = flag.Int("max-attempts", 0, "dispatch attempts per cell before the sweep fails loudly (0 = 3)")
		format   = flag.String("format", "text", "output format: text, csv, markdown, or json")
		sortCol  = flag.Bool("sort", false, "sort the Figure 5 sweep by miss rate instead of paper order")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run to this file")
	)
	flag.Parse()

	switch {
	case *workerM:
		if err := experiments.ServeShardWorker(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	case *connect != "":
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(os.Stderr, "st2shard: serving cells for coordinator %s\n", *connect)
		if err := experiments.ServeShardWorker(conn, conn); err != nil {
			fatal(err)
		}
		return
	}

	if *store == "" {
		fatal(fmt.Errorf("-store is required: shard workers load kernel sections from it (or use -worker / -connect)"))
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be ≥ 1, got %d", *shards))
	}

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.NumSMs = *sms
	cfg.SweepWorkers = *workers
	cfg.Metrics = metrics.New()
	if *traceOut != "" {
		cfg.Obs = obs.New()
		defer func() {
			if err := cfg.Obs.WriteChromeTraceFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "st2shard: wrote %d spans to %s\n", cfg.Obs.Len(), *traceOut)
		}()
	}
	if err := ensureStore(cfg, *store); err != nil {
		fatal(err)
	}

	var conns []*experiments.ShardConn
	var err error
	if *listen != "" {
		conns, err = acceptWorkers(*listen, *shards)
	} else {
		exe, exeErr := os.Executable()
		if exeErr != nil {
			fatal(exeErr)
		}
		conns, err = experiments.SpawnWorkers(*shards, func() *exec.Cmd {
			return exec.Command(exe, "-worker")
		})
	}
	if err != nil {
		fatal(err)
	}
	opts := experiments.ShardOptions{Lease: *lease, MaxAttempts: *retries}

	if *fig3 {
		rows, err := experiments.Fig3Sharded(cfg, *store, conns, opts)
		if err != nil {
			fatal(err)
		}
		tbl := report.New("Figure 3 — carry correlation (sharded)",
			"kernel", trace.Fig3Designs[0], trace.Fig3Designs[1], trace.Fig3Designs[2])
		for _, r := range rows {
			tbl.Add(r.Kernel, report.Pct(r.Rates[0]), report.Pct(r.Rates[1]), report.Pct(r.Rates[2]))
		}
		printTable(tbl, *format)
		return
	}
	rows, err := experiments.Fig5Sharded(cfg, *store, nil, conns, opts)
	if err != nil {
		fatal(err)
	}
	tbl := report.New("Figure 5 — carry-speculation design space (sharded)",
		"design", "avg thread misprediction rate")
	for _, r := range rows {
		tbl.Add(r.Design, report.Pct(r.MissRate))
	}
	if *sortCol {
		tbl.SortBy(1)
	}
	printTable(tbl, *format)
}

// ensureStore builds the decoded store (one simulation + one decode)
// when it does not exist yet, so a first run works out of the box.
func ensureStore(cfg experiments.Config, storePath string) error {
	_, err := os.Stat(storePath)
	if err == nil {
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	fmt.Fprintf(os.Stderr, "st2shard: %s missing — simulating the suite once to build it\n", storePath)
	set, err := experiments.RecordSuite(cfg)
	if err != nil {
		return err
	}
	dec, err := trace.DecodeSetTraced(set, cfg.Obs)
	if err != nil {
		return err
	}
	return dec.WriteStoreFileTraced(storePath, trace.StoreOptions{}, cfg.Obs)
}

// acceptWorkers waits for n TCP worker connections (each a
// `st2shard -connect` on some host) on addr.
func acceptWorkers(addr string, n int) ([]*experiments.ShardConn, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "st2shard: waiting for %d workers on %s\n", n, ln.Addr())
	conns := make([]*experiments.ShardConn, 0, n)
	for len(conns) < n {
		c, err := ln.Accept()
		if err != nil {
			experiments.CloseShardConns(conns)
			return nil, err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		fmt.Fprintf(os.Stderr, "st2shard: worker %d connected from %s\n", len(conns), c.RemoteAddr())
		conns = append(conns, &experiments.ShardConn{
			Name: fmt.Sprintf("tcp-%d(%s)", len(conns), c.RemoteAddr()),
			R:    c, W: c, C: c,
		})
	}
	return conns, nil
}

func printTable(t *report.Table, format string) {
	out, err := t.Render(format)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "st2shard:", err)
	os.Exit(1)
}
